#!/usr/bin/env python3
"""Compare two manytiers batch reports or bench logs, flag regressions.

Two input modes, auto-detected per file:

  * report mode — the BATCH_JSON line format written by `manytiers_batch`
    (BENCH_JSON breadcrumbs fold in as run timing). Checks that the two
    runs cover the same grid and reports capture regressions (any
    per-cell min/max envelope value that moved by more than
    --capture-tol; default 0: bit-exact, which the engine guarantees for
    same-grid runs at any shard/thread count) and latency regressions.
  * bench mode — pure BENCH_JSON trajectory logs, as emitted by the
    bench binaries (e.g. `bench_sweep_scaling > run.log`). Records are
    keyed by (bench name, threads); repeated keys collapse to their
    median wall_ms. Only the latency gates apply.

A latency regression is a wall_ms that grew by more than
--latency-factor AND --latency-min-ms (timing is noisy, so both gates
must trip; absent timing fields are skipped). Mixing modes — a batch
report against a bench log — is an error.

Bench records carrying a "p99_us" field (the latency-vs-offered-rate
curves written by `bench_serve_load`) are diffed as latency curves
instead of wall-clock trajectories: the median p50_us is toleranced
with the usual soft gates (factor AND --curve-min-us absolute growth),
a p99_us regression past the same thresholds is a HARD failure (exit 1
even without --fail-on-latency — tail latency is the service-level
contract), and p999_us / achieved_per_s changes are reported as
informational notes only.

Bench mode can also run as a speedup gate: --min-speedup X requires the
candidate to be at least X times faster than the baseline on every
shared key (exit 1 otherwise). Used by tools/check.sh to hold the
divide-and-conquer DP kernel to a same-machine advantage over the naive
kernel, where both logs come from the same host and the usual
cross-machine noise caveats do not apply.

Exit status: 0 clean, 1 capture regression (or latency regression with
--fail-on-latency), 2 usage/incomparable-input errors (mismatched grids,
mixed modes, missing bench keys).

Examples:
  bench_diff.py golden_smoke.batch fresh.batch
  bench_diff.py old.batch new.batch --capture-tol 1e-12 --fail-on-latency
  bench_diff.py sweep_scaling.old.log sweep_scaling.new.log --fail-on-latency
"""

import argparse
import json
import sys


def parse_report(path):
    report = {"grid": None, "cells": {}, "order": [], "timing": None,
              "points": {}}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("BATCH_JSON "):
                record = json.loads(line[len("BATCH_JSON "):])
            elif line.startswith("BENCH_JSON "):
                # Bench breadcrumbs carry timing only; fold the first one
                # in as run timing if the report itself has none.
                record = json.loads(line[len("BENCH_JSON "):])
                record["type"] = "timing"
            else:
                continue
            kind = record.get("type")
            if kind == "grid":
                if report["grid"] is not None:
                    raise ValueError(f"{path}: duplicate grid record")
                report["grid"] = record
            elif kind == "cell":
                key = record["key"]
                if key in report["cells"]:
                    raise ValueError(f"{path}: duplicate cell {key!r}")
                report["cells"][key] = record
                report["order"].append(key)
            elif kind == "point":
                # Schema v2 per-point capture vectors (--per-point runs).
                key = record["cell"]
                if key not in report["cells"]:
                    raise ValueError(
                        f"{path}: point record for unknown cell {key!r}")
                detail = report["points"].setdefault(key, {})
                if record["point"] in detail:
                    raise ValueError(
                        f"{path}: duplicate point {record['point']} in cell "
                        f"{key!r}")
                detail[record["point"]] = record["capture"]
            elif kind == "timing":
                if report["timing"] is None:
                    report["timing"] = record
    if report["grid"] is None:
        raise ValueError(f"{path}: no BATCH_JSON grid record found")
    return report


def detect_mode(path):
    """'report' if the file has BATCH_JSON lines, else 'bench'."""
    has_bench = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("BATCH_JSON "):
                return "report"
            if line.startswith("BENCH_JSON "):
                has_bench = True
    if has_bench:
        return "bench"
    raise ValueError(f"{path}: no BATCH_JSON or BENCH_JSON lines found")


def parse_bench_log(path):
    """BENCH_JSON trajectory -> {(bench, threads): {n, samples}} in order."""
    log = {"keys": [], "records": {}}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.startswith("BENCH_JSON "):
                continue
            record = json.loads(line[len("BENCH_JSON "):])
            if record.get("wall_ms") is None:
                # Time-series sidecar records (stats polls and the like)
                # carry no timing sample; they ride along for humans and
                # never enter the gates.
                continue
            key = (record["bench"], record.get("threads", 1))
            entry = log["records"].get(key)
            if entry is None:
                entry = {"n": record.get("n"), "samples": [],
                         "max_rss_kb": None, "curve": {}}
                log["records"][key] = entry
                log["keys"].append(key)
            elif entry["n"] != record.get("n"):
                raise ValueError(
                    f"{path}: bench {key[0]!r} threads={key[1]} re-run with "
                    f"different n ({entry['n']} vs {record.get('n')})")
            entry["samples"].append(record["wall_ms"])
            if record.get("p99_us") is not None:
                # Latency-curve record (bench_serve_load): collect the
                # percentile fields; repeated keys collapse to medians,
                # same as wall_ms.
                for field in ("p50_us", "p99_us", "p999_us",
                              "achieved_per_s"):
                    if record.get(field) is not None:
                        entry["curve"].setdefault(field, []).append(
                            record[field])
            # Resource fields are newer than some logs; absent means an
            # older binary wrote the log, which stays fully comparable.
            if record.get("max_rss_kb") is not None:
                entry["max_rss_kb"] = max(entry["max_rss_kb"] or 0,
                                          record["max_rss_kb"])
    if not log["keys"]:
        raise ValueError(f"{path}: no BENCH_JSON records found")
    return log


def median(samples):
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def diff_curve(label, base, cand, factor, min_us, regressions, hard, notes):
    """Latency-curve gates for one (bench, threads) key: p50 soft, p99
    hard, p999/achieved informational."""
    def med(entry, field):
        samples = entry["curve"].get(field)
        return median(samples) if samples else None

    old_p50, new_p50 = med(base, "p50_us"), med(cand, "p50_us")
    if old_p50 is not None and new_p50 is not None:
        if new_p50 > old_p50 * factor and new_p50 - old_p50 > min_us:
            regressions.append(
                f"{label}: p50 {old_p50:.1f} us -> {new_p50:.1f} us "
                f"({new_p50 / old_p50:.2f}x)")
    old_p99, new_p99 = med(base, "p99_us"), med(cand, "p99_us")
    if old_p99 is not None and new_p99 is not None:
        if new_p99 > old_p99 * factor and new_p99 - old_p99 > min_us:
            hard.append(
                f"{label}: p99 {old_p99:.1f} us -> {new_p99:.1f} us "
                f"({new_p99 / old_p99:.2f}x)")
    old_p999, new_p999 = med(base, "p999_us"), med(cand, "p999_us")
    if (old_p999 is not None and new_p999 is not None
            and new_p999 > old_p999 * factor):
        notes.append(
            f"{label}: p999 {old_p999:.1f} us -> {new_p999:.1f} us "
            f"({new_p999 / old_p999:.2f}x, informational)")
    old_ach, new_ach = med(base, "achieved_per_s"), med(cand, "achieved_per_s")
    if (old_ach is not None and new_ach is not None
            and new_ach < old_ach * 0.95):
        notes.append(
            f"{label}: achieved {old_ach:.0f}/s -> {new_ach:.0f}/s "
            f"({new_ach / old_ach:.2f}x, informational)")


def diff_trajectory(baseline, candidate, factor, min_ms, min_speedup=None,
                    curve_min_us=200.0):
    """-> (structure_problems, latency_regressions, hard_regressions,
    notes) between logs."""
    structure, regressions, hard, notes = [], [], [], []
    for key in baseline["keys"]:
        bench, threads = key
        label = f"{bench} threads={threads}"
        cand = candidate["records"].get(key)
        if cand is None:
            structure.append(f"bench missing from candidate: {label}")
            continue
        base = baseline["records"][key]
        if base["n"] != cand["n"]:
            structure.append(
                f"{label}: n {base['n']} -> {cand['n']} (not comparable)")
            continue
        if base["curve"] and cand["curve"]:
            # Latency-curve records: percentile gates replace the wall_ms
            # gate (a sweep step's wall time is fixed by its phase
            # durations, so wall_ms growth is meaningless there).
            diff_curve(label, base, cand, factor, curve_min_us,
                       regressions, hard, notes)
            continue
        if bool(base["curve"]) != bool(cand["curve"]):
            structure.append(
                f"{label}: latency-curve record on one side only "
                "(not comparable)")
            continue
        old_ms, new_ms = median(base["samples"]), median(cand["samples"])
        if min_speedup is not None:
            # Speedup-gate mode: the candidate must beat the baseline by
            # at least min_speedup on every shared key (used to hold the
            # dc DP kernel to a same-machine advantage over naive).
            speedup = old_ms / new_ms if new_ms > 0 else float("inf")
            if speedup < min_speedup:
                regressions.append(
                    f"{label}: {old_ms:.2f} ms -> {new_ms:.2f} ms "
                    f"({speedup:.2f}x, need >= {min_speedup:g}x)")
            continue
        if new_ms > old_ms * factor and new_ms - old_ms > min_ms:
            regressions.append(
                f"{label}: {old_ms:.2f} ms -> {new_ms:.2f} ms "
                f"({new_ms / old_ms:.2f}x)")
        # Peak RSS is informational only (a process-wide high-water mark,
        # shared across benches in one binary): report growth, never fail.
        old_rss, new_rss = base.get("max_rss_kb"), cand.get("max_rss_kb")
        if old_rss and new_rss and new_rss > old_rss * 1.25:
            notes.append(
                f"{label}: max RSS {old_rss} kB -> {new_rss} kB "
                f"({new_rss / old_rss:.2f}x, informational)")
    for key in candidate["keys"]:
        if key not in baseline["records"]:
            structure.append(
                f"bench missing from baseline: {key[0]} threads={key[1]}")
    return structure, regressions, hard, notes


def diff_envelopes(baseline, candidate, tol):
    problems = []
    for key in baseline["order"]:
        base = baseline["cells"][key]
        cand = candidate["cells"].get(key)
        if cand is None:
            problems.append(f"cell missing from candidate: {key}")
            continue
        if base["points"] != cand["points"]:
            problems.append(
                f"{key}: point count {base['points']} -> {cand['points']}")
        for bound in ("min", "max"):
            a, b = base[bound], cand[bound]
            if len(a) != len(b):
                problems.append(
                    f"{key}: {bound} length {len(a)} -> {len(b)}")
                continue
            for i, (x, y) in enumerate(zip(a, b)):
                if abs(x - y) > tol:
                    problems.append(
                        f"{key}: {bound}[B={i + 1}] {x!r} -> {y!r} "
                        f"(|delta| = {abs(x - y):.3e} > tol {tol:g})")
    for key in candidate["order"]:
        if key not in baseline["cells"]:
            problems.append(f"cell missing from baseline: {key}")
    return problems


def diff_points(baseline, candidate, tol):
    """Per-point capture diff (schema v2): names the exact sweep point
    that regressed, not just the cell envelope. Cells without per-point
    detail on both sides are skipped (the envelope diff still covers
    them); a one-sided absence is reported as an info note, not a
    regression."""
    problems, notes = [], []
    for key in baseline["order"]:
        base = baseline["points"].get(key)
        cand = candidate["points"].get(key)
        if base is None and cand is None:
            continue
        if base is None or cand is None:
            side = "baseline" if base is None else "candidate"
            notes.append(f"{key}: no per-point detail in the {side} "
                         "(envelope check only)")
            continue
        for point in sorted(base):
            if point not in cand:
                problems.append(f"{key}: point {point} missing from candidate")
                continue
            a, b = base[point], cand[point]
            if len(a) != len(b):
                problems.append(
                    f"{key}: point {point} capture length {len(a)} -> "
                    f"{len(b)}")
                continue
            for i, (x, y) in enumerate(zip(a, b)):
                if abs(x - y) > tol:
                    problems.append(
                        f"{key}: point {point} capture[B={i + 1}] "
                        f"{x!r} -> {y!r} (|delta| = {abs(x - y):.3e} > "
                        f"tol {tol:g})")
        for point in sorted(cand):
            if point not in base:
                problems.append(f"{key}: point {point} missing from baseline")
    return problems, notes


def diff_latency(baseline, candidate, factor, min_ms):
    regressions = []

    def check(label, old_ms, new_ms):
        if old_ms is None or new_ms is None:
            return
        if new_ms > old_ms * factor and new_ms - old_ms > min_ms:
            regressions.append(
                f"{label}: {old_ms:.2f} ms -> {new_ms:.2f} ms "
                f"({new_ms / old_ms:.2f}x)")

    for key in baseline["order"]:
        cand = candidate["cells"].get(key)
        if cand is None:
            continue
        check(key, baseline["cells"][key].get("wall_ms"),
              cand.get("wall_ms"))
    old_t = (baseline["timing"] or {}).get("wall_ms")
    new_t = (candidate["timing"] or {}).get("wall_ms")
    check("total", old_t, new_t)
    return regressions


def diff_bench_logs(args):
    baseline = parse_bench_log(args.baseline)
    candidate = parse_bench_log(args.candidate)
    structure, regressions, hard, notes = diff_trajectory(
        baseline, candidate, args.latency_factor, args.latency_min_ms,
        args.min_speedup, args.curve_min_us)
    for line in structure:
        print(f"bench_diff: {line}", file=sys.stderr)
    for line in notes:
        print(f"bench_diff: {line}", file=sys.stderr)
    for line in regressions:
        print(f"LATENCY  {line}")
    for line in hard:
        print(f"TAIL     {line}")
    if structure:
        return 2
    if not regressions and not hard:
        if args.min_speedup is not None:
            print(f"OK: candidate >= {args.min_speedup:g}x faster than "
                  f"baseline on all {len(baseline['keys'])} bench keys")
        else:
            print(f"OK: {len(baseline['keys'])} bench trajectories match "
                  f"(factor {args.latency_factor:g}, "
                  f"min {args.latency_min_ms:g} ms)")
        return 0
    # A p99 curve regression is a hard failure: tail latency is the
    # service-level contract, not a noisy-trajectory warning. A failed
    # speedup gate likewise.
    if hard or args.min_speedup is not None:
        return 1
    return 1 if args.fail_on_latency else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="reference report (e.g. the golden)")
    parser.add_argument("candidate", help="report under test")
    parser.add_argument("--capture-tol", type=float, default=0.0,
                        help="allowed |delta| per envelope value (default 0)")
    parser.add_argument("--latency-factor", type=float, default=1.5,
                        help="flag wall_ms growth beyond this factor")
    parser.add_argument("--latency-min-ms", type=float, default=5.0,
                        help="ignore absolute growth below this many ms")
    parser.add_argument("--fail-on-latency", action="store_true",
                        help="exit 1 on latency regressions too")
    parser.add_argument("--curve-min-us", type=float, default=200.0,
                        help="latency-curve records: ignore absolute p50/p99 "
                        "growth below this many microseconds")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="bench mode only: require the candidate to be "
                        "at least this many times faster than the baseline "
                        "on every shared key (exit 1 otherwise); replaces "
                        "the growth gates")
    args = parser.parse_args(argv)

    try:
        modes = (detect_mode(args.baseline), detect_mode(args.candidate))
        if modes[0] != modes[1]:
            raise ValueError(
                f"mixed input modes: {args.baseline} is a {modes[0]}, "
                f"{args.candidate} is a {modes[1]}")
        if modes[0] == "bench":
            return diff_bench_logs(args)
        if args.min_speedup is not None:
            raise ValueError("--min-speedup only applies to bench logs")
        baseline = parse_report(args.baseline)
        candidate = parse_report(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2

    if baseline["grid"]["signature"] != candidate["grid"]["signature"]:
        print("bench_diff: reports cover different grids:\n"
              f"  baseline:  {baseline['grid']['signature']}\n"
              f"  candidate: {candidate['grid']['signature']}",
              file=sys.stderr)
        return 2

    capture_problems = diff_envelopes(baseline, candidate, args.capture_tol)
    point_problems, point_notes = diff_points(baseline, candidate,
                                              args.capture_tol)
    capture_problems += point_problems
    latency_problems = diff_latency(baseline, candidate, args.latency_factor,
                                    args.latency_min_ms)

    for line in point_notes:
        print(f"bench_diff: {line}", file=sys.stderr)
    for line in capture_problems:
        print(f"CAPTURE  {line}")
    for line in latency_problems:
        print(f"LATENCY  {line}")
    if not capture_problems and not latency_problems:
        detailed = sum(1 for key in baseline["order"]
                       if key in baseline["points"]
                       and key in candidate["points"])
        per_point = (f", {detailed} with per-point detail"
                     if detailed else "")
        print(f"OK: {len(baseline['order'])} cells match "
              f"(capture tol {args.capture_tol:g}{per_point}), "
              "no latency regressions")
    if capture_problems:
        return 1
    if latency_problems and args.fail_on_latency:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
