#!/usr/bin/env bash
# Tier-1 gate plus sanitizer pass for the process-supervision paths.
#
#   tools/check.sh            # full build + full ctest + bench gates +
#                             # serve smoke (incl. live stats polls), then
#                             # ASan+UBSan build +
#                             # `ctest -L "obs|orchestrator|serve|netdyn|topology"`,
#                             # then TSan build +
#                             # `ctest -L "obs|parallel|serve|netdyn"`
#   tools/check.sh --fast     # skip both sanitizer legs
#
# The orchestrator fork/exec/kill/heartbeat code is exactly the kind of
# code where a latent use-after-free or signed-overflow hides behind
# "the test passed": the sanitizer leg re-runs every orchestrator- and
# driver-labelled supervision test with ASan+UBSan enabled, plus the
# serve suite — its malformed-frame corpus and the chaos harness
# (slow-loris, RST aborts, drain storms against the live binary) only
# prove hardening if a byte-level parser bug actually crashes. The TSan leg covers the other
# risk pocket — the lock-free obs registry (sharded relaxed atomics),
# the parallel_for pool, and the serve daemon's RCU-style snapshot swap
# under concurrent reloads — where a data race would corrupt counters
# or tear a snapshot silently instead of crashing.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== tier-1: configure + build =="
cmake -S "$repo" -B "$repo/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$repo/build" -j "$jobs"

echo "== tier-1: full ctest =="
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== dp kernel: naive-vs-dc speedup gate =="
if command -v python3 >/dev/null 2>&1; then
  # Same machine, same binary, both kernels forced in turn: the
  # divide-and-conquer fill must beat naive by >= 3x on every quick
  # config (the full-mode acceptance number, 5x at n=50k, is recorded in
  # the committed baselines; the quick grid keeps this leg under a
  # minute). A trajectory compare against the committed dc baseline is
  # informational: cross-machine wall times are too noisy to gate on.
  dp_dir="$repo/build/dp_gate"
  mkdir -p "$dp_dir"
  "$repo/build/bench/bench_dp_scaling" --kernel naive > "$dp_dir/naive.log"
  "$repo/build/bench/bench_dp_scaling" --kernel dc > "$dp_dir/dc.log"
  python3 "$repo/tools/bench_diff.py" "$dp_dir/naive.log" "$dp_dir/dc.log" \
    --min-speedup 3
  python3 "$repo/tools/bench_diff.py" \
    "$repo/bench/baselines/dp_scaling_dc.quick.log" "$dp_dir/dc.log" || true
else
  echo "check.sh: python3 not found, skipping dp kernel gate"
fi

echo "== netdyn: incremental-vs-naive speedup gate =="
if command -v python3 >/dev/null 2>&1; then
  # Same machine, same binary, both SSSP kernels in turn over identical
  # gentle reweigh streams: incremental repair must beat full
  # re-Dijkstra by >= 5x median per update on every gate config (the
  # acceptance number at <= 10% affected vertices). The compare against
  # the committed incremental baseline is informational only —
  # cross-machine wall times are too noisy to gate on.
  nd_dir="$repo/build/netdyn_gate"
  mkdir -p "$nd_dir"
  "$repo/build/bench/bench_netdyn" --kernel naive > "$nd_dir/naive.log"
  "$repo/build/bench/bench_netdyn" --kernel incremental > "$nd_dir/incr.log"
  python3 "$repo/tools/bench_diff.py" "$nd_dir/naive.log" "$nd_dir/incr.log" \
    --min-speedup 5
  python3 "$repo/tools/bench_diff.py" \
    "$repo/bench/baselines/netdyn_incremental.quick.log" "$nd_dir/incr.log" \
    || true
else
  echo "check.sh: python3 not found, skipping netdyn gate"
fi

echo "== serve: daemon smoke over a unix socket =="
# One query of every kind against a real daemon, then a clean SIGTERM
# shutdown: this is the exact start-then-query idiom EXPERIMENTS.md
# documents, so it stays exercised even when nobody runs the gtest E2Es.
serve_dir="$repo/build/serve_smoke"
rm -rf "$serve_dir" && mkdir -p "$serve_dir"
serve_sock="$serve_dir/mt.sock"
"$repo/build/src/manytiers_serve" --grid smoke --socket "$serve_sock" \
  --metrics "$serve_dir/metrics.json" --metrics-interval-ms 200 \
  > "$serve_dir/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
quote() {
  "$repo/build/src/manytiers_quote" --socket "$serve_sock" --retry-ms 10000 \
    "$@" > /dev/null
}
# health first: the readiness probe a supervisor would use, and the
# check that an unconfigured daemon reports "ready".
"$repo/build/src/manytiers_quote" --socket "$serve_sock" --retry-ms 10000 \
  health | grep -q '"state":"ready"'
quote price --market "EU ISP/ced/linear" --strategy Optimal --q 120 --d 800
quote schedule --market "CDN/logit/linear" --strategy Profit-weighted
quote requote --market "Internet2/ced/linear" --strategy Optimal --flow 3
quote reload --seed 43
# Two stats polls with a priced query between them: counters must be
# monotone across polls and the request count must actually move — the
# live half of the streaming-observability contract.
"$repo/build/src/manytiers_quote" --socket "$serve_sock" --retry-ms 10000 \
  stats > "$serve_dir/stats1.json"
quote price --market "EU ISP/ced/linear" --strategy Optimal --q 60 --d 400
"$repo/build/src/manytiers_quote" --socket "$serve_sock" --retry-ms 10000 \
  stats > "$serve_dir/stats2.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$serve_dir/stats1.json" "$serve_dir/stats2.json" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a["ok"] and b["ok"], "stats polls must answer ok"
assert a["version"] == b["version"] == "1.2", (a["version"], b["version"])
assert b["t_us"] >= a["t_us"], "stats capture time went backwards"
ca, cb = dict(a["counters"]), dict(b["counters"])
for name, value in ca.items():
    assert cb.get(name, 0) >= value, f"counter {name} went backwards"
assert cb["serve.requests"] > ca["serve.requests"], \
    "serve.requests did not advance across polls"
EOF
else
  grep -q '"kind":"stats"' "$serve_dir/stats2.json"
fi
kill -TERM "$serve_pid"
wait "$serve_pid"
trap - EXIT
grep -q '"serve.requests.price"' "$serve_dir/metrics.json"
grep -q '"kind":"tick"' "$serve_dir/metrics.series.json"
grep -q '"event":"drained"' "$serve_dir/serve.log"
echo "check.sh: serve smoke ok (health ready, stats monotone, series" \
  "stream, drained on SIGTERM, metrics)"

echo "== serve: overload regime p99-of-accepted gate =="
if command -v python3 >/dev/null 2>&1; then
  # 2x the measured knee against a deadline-armed in-process server.
  # Unlike the wall-time benches, p99-of-accepted here is bounded by the
  # request deadline — configuration, not machine speed — so the compare
  # against the committed baseline is a hard gate (latency-curve mode):
  # if p99-of-accepted regresses past the factor, shedding stopped
  # protecting the accepted requests.
  ov_dir="$repo/build/serve_overload"
  mkdir -p "$ov_dir"
  "$repo/build/bench/bench_serve_load" --overload > "$ov_dir/overload.log"
  python3 "$repo/tools/bench_diff.py" \
    "$repo/bench/baselines/serve_load.overload.log" "$ov_dir/overload.log"
else
  echo "check.sh: python3 not found, skipping serve overload gate"
fi

if [[ "$fast" == 1 ]]; then
  echo "check.sh: --fast given, skipping sanitizer leg"
  exit 0
fi

echo "== sanitizers: ASan+UBSan build =="
cmake -S "$repo" -B "$repo/build-asan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMANYTIERS_SANITIZE=ON
cmake --build "$repo/build-asan" -j "$jobs"

echo "== sanitizers: ctest -L \"obs|orchestrator|serve|netdyn|topology\" =="
# netdyn joins the leg because incremental-repair bookkeeping (cone
# resets, tombstone rows, matrix growth) is exactly where an
# out-of-bounds row index would hide behind a passing value check;
# topology rides along as its dependency surface. obs joins for the
# streaming layer: the hand-rolled series parser and the snapshotter's
# temp+rename writer are byte-level code ASan should see.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ASAN_OPTIONS="detect_leaks=0" \
  ctest --test-dir "$repo/build-asan" \
    -L "obs|orchestrator|serve|netdyn|topology" \
    --output-on-failure -j "$jobs"

echo "== sanitizers: TSan build =="
cmake -S "$repo" -B "$repo/build-tsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMANYTIERS_TSAN=ON
# obs_smoke (labeled obs) drives the real batch + orchestrator binaries;
# the serve suite's E2E tests drive manytiers_serve/manytiers_quote.
cmake --build "$repo/build-tsan" -j "$jobs" \
  --target test_obs test_parallel manytiers_batch manytiers_orchestrate \
  test_serve test_serve_chaos manytiers_serve_bin manytiers_quote test_netdyn

echo "== sanitizers: ctest -L \"obs|parallel|serve|netdyn\" =="
# test_netdyn's grid sessions re-evaluate dirty cells on the shared
# parallel_for pool while clean cells are read back — the dirty-set
# bookkeeping the TSan leg exists to keep honest.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$repo/build-tsan" -L "obs|parallel|serve|netdyn" \
    --output-on-failure -j "$jobs"

echo "check.sh: all green"
