#include "market/competition.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace manytiers::market {
namespace {

Duopoly small_market(double alpha = 1.2) {
  CompetitionConfig config;
  config.alpha = alpha;
  config.market_size = 1000.0;
  return Duopoly({3.0, 2.0, 4.0}, config);
}

Transiter transiter(const char* name, std::vector<double> costs) {
  Transiter t;
  t.name = name;
  t.prices = costs;  // start at cost
  t.costs = std::move(costs);
  return t;
}

TEST(Duopoly, ValidatesConstruction) {
  EXPECT_THROW(Duopoly({}, {}), std::invalid_argument);
  CompetitionConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(Duopoly({1.0}, bad), std::invalid_argument);
  CompetitionConfig bad2;
  bad2.max_rounds = 0;
  EXPECT_THROW(Duopoly({1.0}, bad2), std::invalid_argument);
}

TEST(Duopoly, ValidatesTransiters) {
  const auto market = small_market();
  auto a = transiter("A", {1.0, 1.0, 1.0});
  auto short_b = transiter("B", {1.0, 1.0});
  EXPECT_THROW(market.profit(a, short_b), std::invalid_argument);
  auto free_lunch = transiter("B", {1.0, 1.0, 1.0});
  free_lunch.prices[0] = 0.0;  // non-positive price
  EXPECT_THROW(market.best_response(a, free_lunch), std::invalid_argument);
  // Pricing *below cost* is legal: blended rates subsidize costly flows.
  auto loss_leader = transiter("B", {1.0, 1.0, 1.0});
  loss_leader.prices[0] = 0.5;
  EXPECT_NO_THROW(market.best_response(a, loss_leader));
}

TEST(Duopoly, BestResponseChargesCommonMarkup) {
  const auto market = small_market();
  const auto a = transiter("A", {0.5, 1.0, 1.5});
  const auto b = transiter("B", {1.0, 1.0, 1.0});
  const auto prices = market.best_response(a, b);
  ASSERT_EQ(prices.size(), 3u);
  const double m0 = prices[0] - 0.5;
  EXPECT_NEAR(prices[1] - 1.0, m0, 1e-9);
  EXPECT_NEAR(prices[2] - 1.5, m0, 1e-9);
  EXPECT_GT(m0, 0.0);
}

TEST(Duopoly, BestResponseIsActuallyBest) {
  // No nearby uniform or single-price deviation improves on the best
  // response.
  const auto market = small_market();
  auto a = transiter("A", {0.8, 1.2, 1.0});
  const auto b = transiter("B", {1.0, 1.0, 1.0});
  a.prices = market.best_response(a, b);
  const double best = market.profit(a, b);
  for (const double delta : {-0.1, -0.01, 0.01, 0.1}) {
    for (std::size_t i = 0; i < 3; ++i) {
      auto deviant = a;
      deviant.prices[i] = std::max(deviant.costs[i], a.prices[i] + delta);
      EXPECT_LE(market.profit(deviant, b), best + 1e-9);
    }
    auto uniform = a;
    for (std::size_t i = 0; i < 3; ++i) {
      uniform.prices[i] = std::max(uniform.costs[i], a.prices[i] + delta);
    }
    EXPECT_LE(market.profit(uniform, b), best + 1e-9);
  }
}

TEST(Duopoly, SymmetricFirmsConvergeToSymmetricEquilibrium) {
  const auto market = small_market();
  const auto result = market.run(transiter("A", {1.0, 1.0, 1.0}),
                                 transiter("B", {1.0, 1.0, 1.0}));
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.a.prices[i], result.b.prices[i], 1e-7);
  }
  EXPECT_NEAR(result.profit_a, result.profit_b, 1e-5 * result.profit_a);
  EXPECT_NEAR(result.share_a, result.share_b, 1e-7);
}

TEST(Duopoly, EquilibriumIsMutualBestResponse) {
  const auto market = small_market();
  const auto result = market.run(transiter("A", {0.7, 1.1, 0.9}),
                                 transiter("B", {1.2, 0.8, 1.0}));
  ASSERT_TRUE(result.converged);
  const auto br_a = market.best_response(result.a, result.b);
  const auto br_b = market.best_response(result.b, result.a);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(br_a[i], result.a.prices[i], 1e-6);
    EXPECT_NEAR(br_b[i], result.b.prices[i], 1e-6);
  }
}

TEST(Duopoly, CompetitionErodesMonopolyProfit) {
  // The price-war effect the paper leaves to future work: an identical
  // rival cuts profit well below monopoly, and equilibrium markups fall.
  const auto market = small_market();
  auto a = transiter("A", {1.0, 1.0, 1.0});
  const double monopoly = market.monopoly_profit(a);
  const auto result = market.run(a, transiter("B", {1.0, 1.0, 1.0}));
  EXPECT_LT(result.profit_a, monopoly);
  // Markups: monopoly vs duopoly.
  Transiter ghost = transiter("ghost", {1.0, 1.0, 1.0});
  for (auto& p : ghost.prices) p += 1e6;
  const auto mono_prices = market.best_response(a, ghost);
  EXPECT_LT(result.a.prices[0], mono_prices[0]);
}

TEST(Duopoly, CostAdvantageWinsShareAndProfit) {
  const auto market = small_market();
  const auto result = market.run(transiter("cheap", {0.5, 0.5, 0.5}),
                                 transiter("dear", {1.5, 1.5, 1.5}));
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.share_a, result.share_b);
  EXPECT_GT(result.profit_a, result.profit_b);
}

TEST(Duopoly, SharesPlusOutsideSumToOne) {
  const auto market = small_market();
  const auto result = market.run(transiter("A", {0.9, 1.0, 1.1}),
                                 transiter("B", {1.1, 1.0, 0.9}));
  EXPECT_NEAR(result.share_a + result.share_b + result.no_purchase_share, 1.0,
              1e-9);
  EXPECT_GT(result.no_purchase_share, 0.0);
}

TEST(Duopoly, MoreElasticMarketsHaveThinnerMarkups) {
  double prev_markup = 1e300;
  for (const double alpha : {0.8, 1.5, 3.0}) {
    const auto market = small_market(alpha);
    const auto result = market.run(transiter("A", {1.0, 1.0, 1.0}),
                                   transiter("B", {1.0, 1.0, 1.0}));
    const double markup = result.a.prices[0] - 1.0;
    EXPECT_LT(markup, prev_markup);
    prev_markup = markup;
  }
}

}  // namespace
}  // namespace manytiers::market
