#include "event_parser.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "orchestrator/events.hpp"

namespace manytiers::orchestrator {
namespace {

TEST(EventParser, ParsesFieldsInRealEmitterOutput) {
  // Round-trip through the real Event builder, not a hand-typed literal:
  // if the emitter's formatting drifts, this is the test that notices.
  const std::string line = Event("spawn")
                               .field("shard", std::size_t{1})
                               .field("attempt", std::size_t{0})
                               .field("pid", 4242L)
                               .field("grid", "smoke")
                               .line();
  const auto event = test::parse_event_line(line);
  EXPECT_EQ(event.type, "spawn");
  EXPECT_EQ(event.at("shard"), "1");
  EXPECT_EQ(event.at("attempt"), "0");
  EXPECT_EQ(event.at("pid"), "4242");
  EXPECT_EQ(event.at("grid"), "\"smoke\"");
  EXPECT_TRUE(event.has("pid"));
  EXPECT_FALSE(event.has("missing"));
  EXPECT_THROW(event.at("missing"), std::out_of_range);
}

TEST(EventParser, AcceptsVersion1PlanEvents) {
  const auto event = test::parse_event_line(
      Event("plan").field("v", std::size_t{1}).field("grid", "smoke").line());
  EXPECT_EQ(event.type, "plan");
  EXPECT_EQ(event.at("v"), "1");
}

TEST(EventParser, TreatsUnversionedPlanAsVersion1) {
  EXPECT_NO_THROW(test::parse_event_line(
      Event("plan").field("grid", "smoke").line()));
}

TEST(EventParser, RejectsFuturePlanSchemaVersions) {
  try {
    test::parse_event_line(
        Event("plan").field("v", std::size_t{2}).field("grid", "smoke").line());
    FAIL() << "v2 plan must be rejected";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("unsupported ORCH_JSON schema"),
              std::string::npos);
  }
  // Non-plan events carry no version and are never rejected for one.
  EXPECT_NO_THROW(test::parse_event_line(
      Event("spawn").field("v", std::size_t{9}).line()));
}

TEST(EventParser, RejectsStructurallyBrokenLines) {
  EXPECT_THROW(test::parse_event_line("not json at all"),
               std::invalid_argument);
  EXPECT_THROW(test::parse_event_line("ORCH_JSON {\"shard\":1}"),
               std::invalid_argument);  // no type
  EXPECT_THROW(test::parse_event_line("ORCH_JSON {\"type\":\"x\""),
               std::invalid_argument);  // unterminated object
}

TEST(EventParser, ParsesWholeLogsAndSkipsInterleavedNoise) {
  std::ostringstream stream;
  EventLog log(stream);
  log.write(Event("plan").field("v", std::size_t{1}).field("grid", "smoke"));
  stream << "worker stderr noise, not an event\n";
  log.write(Event("done").field("wall_ms", 12.5));
  const auto events = test::parse_event_log(stream.str());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "plan");
  EXPECT_TRUE(events[0].has("t_ms"));  // the log stamps every event
  EXPECT_EQ(events[1].type, "done");
  EXPECT_EQ(events[1].at("wall_ms"), "12.500");  // Event prints 3 decimals
}

}  // namespace
}  // namespace manytiers::orchestrator
