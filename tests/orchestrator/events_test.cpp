#include "orchestrator/events.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace manytiers::orchestrator {
namespace {

TEST(Event, RendersTypedFieldsInOrder) {
  const auto line = Event("spawn")
                        .field("shard", std::size_t{1})
                        .field("pid", 4242L)
                        .field("grid", "smoke")
                        .line();
  EXPECT_EQ(line,
            "ORCH_JSON {\"type\":\"spawn\",\"shard\":1,\"pid\":4242,"
            "\"grid\":\"smoke\"}");
}

TEST(Event, EscapesStringsForStrictJson) {
  const auto line =
      Event("bad-part").field("reason", "path \"a\\b\"\nline2").line();
  EXPECT_EQ(line,
            "ORCH_JSON {\"type\":\"bad-part\","
            "\"reason\":\"path \\\"a\\\\b\\\"\\nline2\"}");
}

TEST(EventLog, WritesOneLinePerEventWithTimestamp) {
  std::ostringstream os;
  EventLog log(os);
  log.write(Event("plan").field("workers", std::size_t{3}));
  log.write(Event("done"));
  const auto text = os.str();
  // Two newline-terminated ORCH_JSON lines, each stamped with t_ms.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("ORCH_JSON {\"type\":\"plan\",\"workers\":3,\"t_ms\":"),
            std::string::npos);
  EXPECT_NE(text.find("ORCH_JSON {\"type\":\"done\",\"t_ms\":"),
            std::string::npos);
}

TEST(EventLog, DisabledLogDropsEvents) {
  EventLog log;  // no sink
  log.write(Event("spawn"));  // must not crash
  EXPECT_GE(log.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace manytiers::orchestrator
