// End-to-end supervision tests against the real manytiers_batch binary
// (path injected as MANYTIERS_BATCH_BIN by CMake). Faults are injected
// deterministically through MANYTIERS_FAULT, so every recovery path —
// crash, stall + timeout, corrupt part — is exercised hermetically.
#include "orchestrator/orchestrator.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "driver/grid.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"

namespace manytiers::orchestrator {
namespace {

namespace fs = std::filesystem;

std::string unsharded_report(const driver::ExperimentGrid& grid) {
  return driver::report_to_string(driver::run_grid(grid),
                                  /*include_timing=*/false);
}

// Fresh per-test options: fast backoff, quiet log, scratch work dir.
struct Fixture {
  Options options;
  std::ostringstream events;
  EventLog log{events};

  explicit Fixture(const char* name) {
    options.worker_binary = MANYTIERS_BATCH_BIN;
    options.work_dir = ::testing::TempDir() + "orch_" + name;
    options.backoff_ms = 1.0;
    fs::remove_all(options.work_dir);
  }
  ~Fixture() { fs::remove_all(options.work_dir); }

  Result run() { return orchestrate(options, log); }
};

TEST(Orchestrator, CleanRunMatchesUnshardedReport) {
  Fixture fx("clean");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  ASSERT_EQ(result.shards.size(), 2u);
  for (const auto& shard : result.shards) {
    EXPECT_TRUE(shard.ok);
    EXPECT_EQ(shard.attempts, 1u);
  }
  // Parts and logs are cleaned up on success unless keep_parts.
  EXPECT_FALSE(fs::exists(fs::path(fx.options.work_dir) / "part0.batch"));
}

TEST(Orchestrator, SingleWorkerDegeneratesToUnshardedRun) {
  Fixture fx("single");
  fx.options.grid = "smoke";
  fx.options.workers = 1;
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
}

TEST(Orchestrator, CrashedWorkerIsRetriedAndReportStaysIdentical) {
  // ISSUE acceptance: a K-worker default-grid run with one injected
  // crash must still be byte-identical to the single-process run.
  Fixture fx("crash");
  fx.options.grid = "default";
  fx.options.workers = 3;
  fx.options.fault = "crash:1";  // shard 1 crashes once, then recovers
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::default_grid()));
  EXPECT_EQ(result.shards[0].attempts, 1u);
  EXPECT_EQ(result.shards[1].attempts, 2u);
  EXPECT_EQ(result.shards[2].attempts, 1u);
  const auto events = fx.events.str();
  EXPECT_NE(events.find("\"type\":\"retry\",\"shard\":1"), std::string::npos);
  EXPECT_NE(events.find("\"type\":\"done\""), std::string::npos);
}

TEST(Orchestrator, PersistentCrashExhaustsRetriesAndFailsTheRun) {
  Fixture fx("exhaust");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.retries = 1;
  fx.options.fault = "crash:0:99";  // shard 0 crashes on every attempt
  const auto result = fx.run();
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.merged.empty());  // never a partial report
  ASSERT_EQ(result.shards.size(), 2u);
  EXPECT_FALSE(result.shards[0].ok);
  EXPECT_EQ(result.shards[0].attempts, 2u);  // 1 try + 1 retry
  EXPECT_NE(result.shards[0].failure.find("exit code"), std::string::npos);
  EXPECT_TRUE(result.shards[1].ok);  // the healthy shard still completes
  EXPECT_NE(fx.events.str().find("\"type\":\"shard-failed\",\"shard\":0"),
            std::string::npos);
  // Evidence (logs, any parts) is kept on failure for post-mortems.
  EXPECT_TRUE(fs::exists(fs::path(fx.options.work_dir) / "worker0.a0.log"));
}

TEST(Orchestrator, StalledWorkerIsKilledOnTimeoutAndRetried) {
  Fixture fx("stall");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.timeout_ms = 750.0;
  fx.options.fault = "stall:1";  // shard 1 hangs on its first attempt
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_EQ(result.shards[1].attempts, 2u);
  EXPECT_NE(fx.events.str().find("\"type\":\"timeout\",\"shard\":1"),
            std::string::npos);
}

TEST(Orchestrator, CorruptPartIsRejectedAndRetried) {
  Fixture fx("corrupt");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.fault = "corrupt:0";  // shard 0 writes a torn part once
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_EQ(result.shards[0].attempts, 2u);
  EXPECT_NE(fx.events.str().find("\"type\":\"bad-part\",\"shard\":0"),
            std::string::npos);
}

TEST(Orchestrator, GridOverridesReachWorkersAndTheMerge) {
  Fixture fx("override");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.n_flows = 30;
  fx.options.max_bundles = 3;
  fx.options.seed = 7;
  fx.options.seed_given = true;
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  auto grid = driver::smoke_grid();
  grid.base.n_flows = 30;
  grid.max_bundles = 3;
  grid.base.seed = 7;
  EXPECT_EQ(result.merged, unsharded_report(grid));
}

TEST(Orchestrator, KeepPartsPreservesPartFilesOnSuccess) {
  Fixture fx("keep");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.keep_parts = true;
  ASSERT_TRUE(fx.run().ok);
  EXPECT_TRUE(fs::exists(fs::path(fx.options.work_dir) / "part0.batch"));
  EXPECT_TRUE(fs::exists(fs::path(fx.options.work_dir) / "part1.batch"));
}

TEST(Orchestrator, MalformedOptionsThrowUsageErrors) {
  Fixture fx("usage");
  fx.options.workers = 0;
  EXPECT_THROW(fx.run(), std::invalid_argument);
  fx.options.workers = 2;
  fx.options.grid = "no-such-grid";
  EXPECT_THROW(fx.run(), std::invalid_argument);
  fx.options.grid = "smoke";
  fx.options.worker_binary = "/nonexistent/manytiers_batch";
  EXPECT_THROW(fx.run(), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::orchestrator
