// End-to-end supervision tests against the real manytiers_batch binary
// (path injected as MANYTIERS_BATCH_BIN by CMake). Faults are injected
// deterministically through MANYTIERS_FAULT, so every recovery path —
// crash, stall + heartbeat/timeout, slow + hedge, corrupt/partial part,
// SIGKILLed supervisor + resume — is exercised hermetically. The resume
// E2E additionally spawns the real manytiers_orchestrate CLI
// (MANYTIERS_ORCH_BIN) so the SIGKILL lands on a separate process, not
// on this test binary.
#include "orchestrator/orchestrator.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "driver/grid.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "obs/trace.hpp"
#include "event_parser.hpp"
#include "orchestrator/process.hpp"
#include "util/file.hpp"

namespace manytiers::orchestrator {
namespace {

namespace fs = std::filesystem;

std::string unsharded_report(const driver::ExperimentGrid& grid) {
  return driver::report_to_string(driver::run_grid(grid),
                                  /*include_timing=*/false);
}

// Fresh per-test options: fast backoff, quiet log, scratch work dir.
struct Fixture {
  Options options;
  std::ostringstream events;
  EventLog log{events};

  explicit Fixture(const char* name) {
    options.worker_binary = MANYTIERS_BATCH_BIN;
    options.work_dir = ::testing::TempDir() + "orch_" + name;
    options.backoff_ms = 1.0;
    fs::remove_all(options.work_dir);
  }
  ~Fixture() { fs::remove_all(options.work_dir); }

  Result run() { return orchestrate(options, log); }
};

TEST(Orchestrator, CleanRunMatchesUnshardedReport) {
  Fixture fx("clean");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  ASSERT_EQ(result.shards.size(), 2u);
  for (const auto& shard : result.shards) {
    EXPECT_TRUE(shard.ok);
    EXPECT_EQ(shard.attempts, 1u);
  }
  // Parts and logs are cleaned up on success unless keep_parts.
  EXPECT_FALSE(fs::exists(fs::path(fx.options.work_dir) / "part0.batch"));
}

TEST(Orchestrator, SingleWorkerDegeneratesToUnshardedRun) {
  Fixture fx("single");
  fx.options.grid = "smoke";
  fx.options.workers = 1;
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
}

TEST(Orchestrator, CrashedWorkerIsRetriedAndReportStaysIdentical) {
  // ISSUE acceptance: a K-worker default-grid run with one injected
  // crash must still be byte-identical to the single-process run.
  Fixture fx("crash");
  fx.options.grid = "default";
  fx.options.workers = 3;
  fx.options.fault = "crash:1";  // shard 1 crashes once, then recovers
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::default_grid()));
  EXPECT_EQ(result.shards[0].attempts, 1u);
  EXPECT_EQ(result.shards[1].attempts, 2u);
  EXPECT_EQ(result.shards[2].attempts, 1u);
  const auto events = fx.events.str();
  EXPECT_NE(events.find("\"type\":\"retry\",\"shard\":1"), std::string::npos);
  EXPECT_NE(events.find("\"type\":\"done\""), std::string::npos);
}

TEST(Orchestrator, PersistentCrashExhaustsRetriesAndFailsTheRun) {
  Fixture fx("exhaust");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.retries = 1;
  fx.options.fault = "crash:0:99";  // shard 0 crashes on every attempt
  const auto result = fx.run();
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.merged.empty());  // never a partial report
  ASSERT_EQ(result.shards.size(), 2u);
  EXPECT_FALSE(result.shards[0].ok);
  EXPECT_EQ(result.shards[0].attempts, 2u);  // 1 try + 1 retry
  EXPECT_NE(result.shards[0].failure.find("exit code"), std::string::npos);
  EXPECT_TRUE(result.shards[1].ok);  // the healthy shard still completes
  EXPECT_NE(fx.events.str().find("\"type\":\"shard-failed\",\"shard\":0"),
            std::string::npos);
  // Evidence (logs, any parts) is kept on failure for post-mortems.
  EXPECT_TRUE(fs::exists(fs::path(fx.options.work_dir) / "worker0.a0.log"));
}

TEST(Orchestrator, StalledWorkerIsKilledOnTimeoutAndRetried) {
  Fixture fx("stall");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.timeout_ms = 750.0;
  fx.options.fault = "stall:1";  // shard 1 hangs on its first attempt
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_EQ(result.shards[1].attempts, 2u);
  EXPECT_NE(fx.events.str().find("\"type\":\"timeout\",\"shard\":1"),
            std::string::npos);
}

TEST(Orchestrator, CorruptPartIsRejectedAndRetried) {
  Fixture fx("corrupt");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.fault = "corrupt:0";  // shard 0 writes a torn part once
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_EQ(result.shards[0].attempts, 2u);
  EXPECT_NE(fx.events.str().find("\"type\":\"bad-part\",\"shard\":0"),
            std::string::npos);
}

TEST(Orchestrator, GridOverridesReachWorkersAndTheMerge) {
  Fixture fx("override");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.n_flows = 30;
  fx.options.max_bundles = 3;
  fx.options.seed = 7;
  fx.options.seed_given = true;
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  auto grid = driver::smoke_grid();
  grid.base.n_flows = 30;
  grid.max_bundles = 3;
  grid.base.seed = 7;
  EXPECT_EQ(result.merged, unsharded_report(grid));
}

TEST(Orchestrator, KeepPartsPreservesPartFilesOnSuccess) {
  Fixture fx("keep");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.keep_parts = true;
  ASSERT_TRUE(fx.run().ok);
  EXPECT_TRUE(fs::exists(fs::path(fx.options.work_dir) / "part0.batch"));
  EXPECT_TRUE(fs::exists(fs::path(fx.options.work_dir) / "part1.batch"));
}

TEST(Orchestrator, HeartbeatStalenessKillsWedgedWorkerWithoutWallClockCap) {
  // A wedged worker never beats; with no --timeout-ms at all, the
  // heartbeat staleness check is what must fire.
  Fixture fx("heartbeat");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.timeout_ms = 0.0;
  fx.options.heartbeat_timeout_ms = 400.0;
  fx.options.fault = "stall:1";
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_EQ(result.shards[1].attempts, 2u);
  const auto events = fx.events.str();
  EXPECT_NE(events.find("\"type\":\"heartbeat-stale\",\"shard\":1"),
            std::string::npos);
  // Liveness is configured, so the no-liveness footgun warning must not
  // appear.
  EXPECT_EQ(events.find("\"type\":\"warn\""), std::string::npos);
}

TEST(Orchestrator, NoLivenessConfiguredLogsFootgunWarning) {
  Fixture fx("warn");
  fx.options.grid = "smoke";
  fx.options.workers = 1;
  fx.options.timeout_ms = 0.0;
  fx.options.heartbeat_timeout_ms = 0.0;
  ASSERT_TRUE(fx.run().ok);
  EXPECT_NE(fx.events.str().find("\"type\":\"warn\""), std::string::npos);
}

TEST(Orchestrator, SlowStragglerIsHedgedWithoutConsumingRetries) {
  // Shard 1's first attempt straggles for 8 s (alive, just slow). With
  // retries = 0 the only way this run can succeed quickly is the hedge:
  // a backup attempt that costs no retry budget and wins.
  Fixture fx("hedge");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.retries = 0;
  fx.options.hedge_after_ms = 200.0;
  fx.options.fault = "slow:1:8000";
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = fx.run();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_EQ(result.shards[1].attempts, 2u);   // primary + hedge
  EXPECT_EQ(result.shards[1].failures, 0u);   // hedge consumed no retry
  EXPECT_LT(wall_ms, 8000.0);                 // did not wait out the sleep
  const auto events = fx.events.str();
  EXPECT_NE(events.find("\"type\":\"hedge-spawn\",\"shard\":1"),
            std::string::npos);
  EXPECT_NE(events.find("\"type\":\"hedge-win\",\"shard\":1"),
            std::string::npos);
}

TEST(Orchestrator, HedgedRunProducesMergedTraceAndMetrics) {
  // ISSUE acceptance: the merged trace of a hedged run must load as
  // valid Chrome trace JSON and carry a pid-tagged spawn->done "X" span
  // for every shard attempt, including the hedge wave — and turning
  // tracing + metrics on must not change the merged report bytes.
  Fixture fx("hedge_trace");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.retries = 0;
  fx.options.hedge_after_ms = 200.0;
  fx.options.fault = "slow:1:8000";
  fx.options.trace = ::testing::TempDir() + "orch_hedge.trace.json";
  fx.options.metrics = true;
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_EQ(result.shards[1].attempts, 2u);  // primary + hedge

  // The merged trace parses as a line-formatted JSON array; collect its
  // supervisor lifecycle spans ("X" events, named "shard K attempt N").
  const auto events = obs::read_trace_events(fx.options.trace);
  ASSERT_FALSE(events.empty());
  std::size_t shard0_spans = 0, shard1_spans = 0, hedge_spans = 0;
  std::set<std::string> pids;
  for (const auto& event : events) {
    const auto pid_at = event.find("\"pid\":");
    ASSERT_NE(pid_at, std::string::npos) << event;
    pids.insert(event.substr(pid_at + 6, event.find_first_of(",}", pid_at) -
                                             pid_at - 6));
    if (event.find("\"ph\":\"X\"") == std::string::npos) continue;
    ASSERT_NE(event.find("\"dur\":"), std::string::npos) << event;
    if (event.find("\"name\":\"shard 0 attempt") != std::string::npos) {
      ++shard0_spans;
    }
    if (event.find("\"name\":\"shard 1 attempt") != std::string::npos) {
      ++shard1_spans;
    }
    if (event.find("(hedge)") != std::string::npos) ++hedge_spans;
  }
  EXPECT_EQ(shard0_spans, 1u);
  EXPECT_EQ(shard1_spans, 2u);  // straggling primary + winning hedge
  EXPECT_EQ(hedge_spans, 1u);
  // Pid-tagged across processes: the supervisor plus >= 2 worker pids
  // (the slow loser may be killed before it flushes a trace).
  EXPECT_GE(pids.size(), 3u);

  // The event log carries the merged-metrics roll-up, and the whole log
  // parses under the versioned test-side reader.
  const auto parsed = test::parse_event_log(fx.events.str());
  ASSERT_FALSE(parsed.empty());
  EXPECT_EQ(parsed.front().type, "plan");
  EXPECT_EQ(parsed.front().at("v"), "1");
  bool saw_metrics = false, saw_trace = false;
  for (const auto& event : parsed) {
    if (event.type == "metrics") {
      saw_metrics = true;
      EXPECT_EQ(event.at("shards_reporting"), "2");
      EXPECT_TRUE(event.has("driver.tasks"));
    }
    if (event.type == "trace") saw_trace = true;
  }
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_trace);
  std::filesystem::remove(fx.options.trace);
}

TEST(Orchestrator, PartialWriteThenDeathIsRetried) {
  // The partial fault leaves a torn prefix at the part path and dies
  // mid-write; the retry must overwrite it with a valid part.
  Fixture fx("partial");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.fault = "partial:0";
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_EQ(result.shards[0].attempts, 2u);
  EXPECT_NE(fx.events.str().find("\"type\":\"retry\",\"shard\":0"),
            std::string::npos);
}

TEST(Orchestrator, ResumeSkipsShardsWithValidParts) {
  Fixture fx("resume_skip");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.keep_parts = true;  // leave canonical parts for the resume
  const auto first = fx.run();
  ASSERT_TRUE(first.ok);

  fx.options.resume = true;
  const auto second = fx.run();
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.merged, first.merged);
  for (const auto& shard : second.shards) {
    EXPECT_TRUE(shard.resumed) << "shard " << shard.shard;
  }
  EXPECT_NE(fx.events.str().find("\"type\":\"resume-skip\",\"shard\":0"),
            std::string::npos);
}

TEST(Orchestrator, ResumeRerunsShardWithTornPart) {
  Fixture fx("resume_torn");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.keep_parts = true;
  ASSERT_TRUE(fx.run().ok);

  // Tear canonical part 0 the way a mid-write death would (the durable
  // path prevents this for workers, but resume must not trust any file
  // it did not just validate).
  const auto part0 = (fs::path(fx.options.work_dir) / "part0.batch").string();
  const std::string text = util::read_file(part0);
  {
    std::ofstream out(part0, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() / 4);
  }
  fx.options.resume = true;
  const auto result = fx.run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  EXPECT_FALSE(result.shards[0].resumed);  // torn part re-ran
  EXPECT_TRUE(result.shards[1].resumed);
  const auto events = fx.events.str();
  EXPECT_NE(events.find("\"type\":\"resume-skip\",\"shard\":1"),
            std::string::npos);
}

TEST(Orchestrator, ResumeRejectsMissingOrMismatchedManifest) {
  Fixture fx("resume_bad");
  fx.options.grid = "smoke";
  fx.options.workers = 2;
  fx.options.resume = true;
  // No manifest in a fresh work dir.
  EXPECT_THROW(fx.run(), std::invalid_argument);

  fx.options.resume = false;
  fx.options.keep_parts = true;
  ASSERT_TRUE(fx.run().ok);
  // Changing the worker count changes shard ownership: resume must
  // refuse rather than merge mismatched parts.
  fx.options.resume = true;
  fx.options.workers = 3;
  EXPECT_THROW(fx.run(), std::invalid_argument);
  // Same for a grid-signature change (different seed).
  fx.options.workers = 2;
  fx.options.seed = 123456;
  fx.options.seed_given = true;
  EXPECT_THROW(fx.run(), std::invalid_argument);
}

TEST(Orchestrator, KilledOrchestratorResumesToIdenticalBytes) {
  // ISSUE acceptance: SIGKILL the real orchestrator CLI mid-run (via the
  // --kill-after-shards test hook), then resume; the merged report must
  // be byte-identical to the uninterrupted unsharded run.
  const std::string work_dir = ::testing::TempDir() + "orch_e2e_resume";
  fs::remove_all(work_dir);
  const std::string out = work_dir + ".batch";
  fs::remove(out);

  SpawnSpec spec;
  spec.argv = {MANYTIERS_ORCH_BIN,
               "--grid",       "smoke",
               "--workers",    "3",
               "--timeout-ms", "60000",
               "--kill-after-shards", "1",
               "--work-dir",   work_dir,
               "--out",        out};
  spec.log_path = work_dir + ".kill.log";
  const pid_t pid = spawn_process(spec);
  std::optional<ExitStatus> status;
  while (!(status = try_wait(pid))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(status->signaled);
  EXPECT_EQ(status->signal, SIGKILL);
  EXPECT_FALSE(fs::exists(out));  // died before any report was written
  ASSERT_TRUE(fs::exists(fs::path(work_dir) / "manifest.orch"));

  Options options;
  options.grid = "smoke";
  options.workers = 3;
  options.worker_binary = MANYTIERS_BATCH_BIN;
  options.work_dir = work_dir;
  options.timeout_ms = 60000.0;
  options.resume = true;
  std::ostringstream events;
  EventLog log{events};
  const auto result = orchestrate(options, log);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.merged, unsharded_report(driver::smoke_grid()));
  // Exactly one shard finished before the SIGKILL (the hook fires inside
  // that shard's completion), so exactly one resume-skip.
  std::size_t resumed = 0;
  for (const auto& shard : result.shards) resumed += shard.resumed ? 1 : 0;
  EXPECT_EQ(resumed, 1u);
  EXPECT_NE(events.str().find("\"type\":\"resume-skip\""), std::string::npos);
  fs::remove_all(work_dir);
  fs::remove(work_dir + ".kill.log");
}

TEST(Orchestrator, MalformedOptionsThrowUsageErrors) {
  Fixture fx("usage");
  fx.options.workers = 0;
  EXPECT_THROW(fx.run(), std::invalid_argument);
  fx.options.workers = 2;
  fx.options.grid = "no-such-grid";
  EXPECT_THROW(fx.run(), std::invalid_argument);
  fx.options.grid = "smoke";
  fx.options.worker_binary = "/nonexistent/manytiers_batch";
  EXPECT_THROW(fx.run(), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::orchestrator
