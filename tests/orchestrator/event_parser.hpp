// Test-side parser for the ORCH_JSON event-log line format.
//
// This is the consumer contract for the "v" schema-version field on plan
// events: v1 readers accept v1 logs (and unversioned pre-v1 logs, which
// are treated as v1), and REFUSE logs stamped with a higher major
// version instead of silently misreading fields whose meaning may have
// changed. Field values are kept as raw JSON value text ("smoke" keeps
// its quotes, numbers stay unparsed) — tests compare against literals.
//
// EXPERIMENTS.md documents every event kind this parser may encounter.
#pragma once

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace manytiers::orchestrator::test {

inline constexpr std::size_t kSupportedOrchSchemaVersion = 1;

struct ParsedEvent {
  std::string type;
  std::map<std::string, std::string> fields;  // key -> raw JSON value text

  bool has(const std::string& key) const { return fields.count(key) != 0; }
  const std::string& at(const std::string& key) const {
    const auto it = fields.find(key);
    if (it == fields.end()) {
      throw std::out_of_range("event \"" + type + "\" has no field \"" + key +
                              "\"");
    }
    return it->second;
  }
};

// Parse one "ORCH_JSON {...}" line (the prefix is optional so raw Event
// lines can be fed in directly). Throws std::invalid_argument on
// structurally broken lines and on plan events with an unsupported
// major schema version.
inline ParsedEvent parse_event_line(const std::string& line) {
  std::string body = line;
  const std::string prefix = "ORCH_JSON ";
  if (body.rfind(prefix, 0) == 0) body = body.substr(prefix.size());
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
    body.pop_back();
  }
  if (body.size() < 2 || body.front() != '{' || body.back() != '}') {
    throw std::invalid_argument("not an ORCH_JSON object line: " + line);
  }

  ParsedEvent event;
  std::size_t i = 1;
  const auto fail = [&](const char* what) {
    throw std::invalid_argument(std::string("bad ORCH_JSON line (") + what +
                                "): " + line);
  };
  while (i < body.size() - 1) {
    if (body[i] == ',') ++i;
    if (body[i] != '"') fail("expected key");
    const std::size_t key_end = body.find('"', i + 1);
    if (key_end == std::string::npos) fail("unterminated key");
    const std::string key = body.substr(i + 1, key_end - i - 1);
    if (key_end + 1 >= body.size() || body[key_end + 1] != ':') {
      fail("expected ':'");
    }
    std::size_t value_start = key_end + 2;
    std::size_t value_end = value_start;
    if (value_start < body.size() && body[value_start] == '"') {
      // String value; the Event emitter escapes quotes as \".
      value_end = value_start + 1;
      while (value_end < body.size() && body[value_end] != '"') {
        value_end += body[value_end] == '\\' ? 2 : 1;
      }
      if (value_end >= body.size()) fail("unterminated string value");
      ++value_end;  // include the closing quote
    } else {
      while (value_end < body.size() - 1 && body[value_end] != ',') {
        ++value_end;
      }
    }
    event.fields[key] = body.substr(value_start, value_end - value_start);
    i = value_end;
  }
  const auto type_it = event.fields.find("type");
  if (type_it == event.fields.end() || type_it->second.size() < 2) {
    fail("missing type");
  }
  event.type = type_it->second.substr(1, type_it->second.size() - 2);

  if (event.type == "plan") {
    // Unversioned plan events predate "v" and mean v1.
    std::size_t version = 1;
    if (event.has("v")) {
      std::istringstream in(event.at("v"));
      if (!(in >> version)) fail("non-numeric \"v\"");
    }
    if (version > kSupportedOrchSchemaVersion) {
      throw std::invalid_argument(
          "unsupported ORCH_JSON schema version " + std::to_string(version) +
          " (this reader understands <= " +
          std::to_string(kSupportedOrchSchemaVersion) + ")");
    }
  }
  return event;
}

// Parse a whole event log, skipping non-ORCH_JSON lines (worker noise
// may be interleaved when the log shares a stream with stderr).
inline std::vector<ParsedEvent> parse_event_log(const std::string& text) {
  std::vector<ParsedEvent> events;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("ORCH_JSON ", 0) != 0) continue;
    events.push_back(parse_event_line(line));
  }
  return events;
}

}  // namespace manytiers::orchestrator::test
