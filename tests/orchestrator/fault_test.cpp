#include "driver/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace manytiers::driver {
namespace {

TEST(FaultPlan, ParsesSingleSpec) {
  const auto plan = parse_fault_plan("crash:2");
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::Crash);
  EXPECT_EQ(plan.faults[0].shard, 2u);
  EXPECT_EQ(plan.faults[0].times, 1u);
}

TEST(FaultPlan, ParsesMultipleSpecsWithTimes) {
  const auto plan = parse_fault_plan("crash:2,stall:5,corrupt:0:3");
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::Crash);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::Stall);
  EXPECT_EQ(plan.faults[1].shard, 5u);
  EXPECT_EQ(plan.faults[2].kind, FaultKind::Corrupt);
  EXPECT_EQ(plan.faults[2].shard, 0u);
  EXPECT_EQ(plan.faults[2].times, 3u);
}

TEST(FaultPlan, ParsesSlowSpecWithDelay) {
  // slow carries a mandatory per-attempt delay: slow:shard:ms[:times]
  const auto plan = parse_fault_plan("slow:1:2000");
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::Slow);
  EXPECT_EQ(plan.faults[0].shard, 1u);
  EXPECT_EQ(plan.faults[0].delay_ms, 2000u);
  EXPECT_EQ(plan.faults[0].times, 1u);

  const auto repeated = parse_fault_plan("slow:4:150:3");
  ASSERT_EQ(repeated.faults.size(), 1u);
  EXPECT_EQ(repeated.faults[0].shard, 4u);
  EXPECT_EQ(repeated.faults[0].delay_ms, 150u);
  EXPECT_EQ(repeated.faults[0].times, 3u);
}

TEST(FaultPlan, ParsesPartialSpec) {
  const auto plan = parse_fault_plan("partial:0,partial:2:2");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::Partial);
  EXPECT_EQ(plan.faults[0].shard, 0u);
  EXPECT_EQ(plan.faults[0].times, 1u);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::Partial);
  EXPECT_EQ(plan.faults[1].times, 2u);
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").faults.empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_plan("explode:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:x"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:1:"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:1:0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:1,,stall:2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(","), std::invalid_argument);
  // slow without its delay, with a zero delay, or with trailing junk.
  EXPECT_THROW(parse_fault_plan("slow:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow:1:0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow:1:100:"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow:1:100:2:9"), std::invalid_argument);
  // non-slow kinds must not carry a fourth field.
  EXPECT_THROW(parse_fault_plan("crash:1:2:3"), std::invalid_argument);
}

TEST(FaultPlan, FaultForMatchesShardAndAttemptGate) {
  const auto plan = parse_fault_plan("crash:1,corrupt:2:2");
  // Shard 0: no fault at all.
  EXPECT_FALSE(fault_for(plan, 0, 0).has_value());
  // Shard 1 crashes on the first attempt only.
  ASSERT_TRUE(fault_for(plan, 1, 0).has_value());
  EXPECT_EQ(fault_for(plan, 1, 0)->kind, FaultKind::Crash);
  EXPECT_FALSE(fault_for(plan, 1, 1).has_value());
  // Shard 2 corrupts on the first two attempts, then recovers.
  EXPECT_EQ(fault_for(plan, 2, 0)->kind, FaultKind::Corrupt);
  EXPECT_EQ(fault_for(plan, 2, 1)->kind, FaultKind::Corrupt);
  EXPECT_FALSE(fault_for(plan, 2, 2).has_value());
}

TEST(FaultPlan, FaultForCarriesSlowDelay) {
  const auto plan = parse_fault_plan("slow:1:750");
  ASSERT_TRUE(fault_for(plan, 1, 0).has_value());
  EXPECT_EQ(fault_for(plan, 1, 0)->kind, FaultKind::Slow);
  EXPECT_EQ(fault_for(plan, 1, 0)->delay_ms, 750u);
  // The attempt gate applies to slow like every other kind: a hedge or
  // retry (attempt 1) runs at full speed.
  EXPECT_FALSE(fault_for(plan, 1, 1).has_value());
}

TEST(FaultPlan, FirstMatchingSpecWins) {
  const auto plan = parse_fault_plan("stall:3,crash:3");
  EXPECT_EQ(fault_for(plan, 3, 0)->kind, FaultKind::Stall);
}

TEST(FaultPlan, KindNamesRoundTrip) {
  EXPECT_EQ(to_string(FaultKind::Crash), "crash");
  EXPECT_EQ(to_string(FaultKind::Stall), "stall");
  EXPECT_EQ(to_string(FaultKind::Slow), "slow");
  EXPECT_EQ(to_string(FaultKind::Corrupt), "corrupt");
  EXPECT_EQ(to_string(FaultKind::Partial), "partial");
}

}  // namespace
}  // namespace manytiers::driver
