#include "driver/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace manytiers::driver {
namespace {

TEST(FaultPlan, ParsesSingleSpec) {
  const auto plan = parse_fault_plan("crash:2");
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::Crash);
  EXPECT_EQ(plan.faults[0].shard, 2u);
  EXPECT_EQ(plan.faults[0].times, 1u);
}

TEST(FaultPlan, ParsesMultipleSpecsWithTimes) {
  const auto plan = parse_fault_plan("crash:2,stall:5,corrupt:0:3");
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::Crash);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::Stall);
  EXPECT_EQ(plan.faults[1].shard, 5u);
  EXPECT_EQ(plan.faults[2].kind, FaultKind::Corrupt);
  EXPECT_EQ(plan.faults[2].shard, 0u);
  EXPECT_EQ(plan.faults[2].times, 3u);
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").faults.empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_plan("explode:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:x"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:1:"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:1:0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:1,,stall:2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan(","), std::invalid_argument);
}

TEST(FaultPlan, FaultForMatchesShardAndAttemptGate) {
  const auto plan = parse_fault_plan("crash:1,corrupt:2:2");
  // Shard 0: no fault at all.
  EXPECT_FALSE(fault_for(plan, 0, 0).has_value());
  // Shard 1 crashes on the first attempt only.
  ASSERT_TRUE(fault_for(plan, 1, 0).has_value());
  EXPECT_EQ(*fault_for(plan, 1, 0), FaultKind::Crash);
  EXPECT_FALSE(fault_for(plan, 1, 1).has_value());
  // Shard 2 corrupts on the first two attempts, then recovers.
  EXPECT_EQ(*fault_for(plan, 2, 0), FaultKind::Corrupt);
  EXPECT_EQ(*fault_for(plan, 2, 1), FaultKind::Corrupt);
  EXPECT_FALSE(fault_for(plan, 2, 2).has_value());
}

TEST(FaultPlan, FirstMatchingSpecWins) {
  const auto plan = parse_fault_plan("stall:3,crash:3");
  EXPECT_EQ(*fault_for(plan, 3, 0), FaultKind::Stall);
}

TEST(FaultPlan, KindNamesRoundTrip) {
  EXPECT_EQ(to_string(FaultKind::Crash), "crash");
  EXPECT_EQ(to_string(FaultKind::Stall), "stall");
  EXPECT_EQ(to_string(FaultKind::Corrupt), "corrupt");
}

}  // namespace
}  // namespace manytiers::driver
