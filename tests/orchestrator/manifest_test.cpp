#include "orchestrator/manifest.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

namespace manytiers::orchestrator {
namespace {

namespace fs = std::filesystem;

Manifest sample() {
  Manifest m;
  m.grid = "smoke";
  m.signature = "smoke|seed=42|n_flows=100|max_bundles=8";
  m.workers = 3;
  m.shards.resize(3);
  m.shards[0] = {"done", 1, 0};
  m.shards[1] = {"open", 2, 1};
  m.shards[2] = {"failed", 3, 3};
  return m;
}

TEST(Manifest, RoundTripsThroughText) {
  const Manifest m = sample();
  const Manifest back = parse_manifest(manifest_to_string(m));
  EXPECT_EQ(back.grid, m.grid);
  EXPECT_EQ(back.signature, m.signature);
  EXPECT_EQ(back.workers, m.workers);
  ASSERT_EQ(back.shards.size(), m.shards.size());
  for (std::size_t k = 0; k < m.shards.size(); ++k) {
    EXPECT_EQ(back.shards[k].state, m.shards[k].state) << "shard " << k;
    EXPECT_EQ(back.shards[k].spawned, m.shards[k].spawned) << "shard " << k;
    EXPECT_EQ(back.shards[k].failures, m.shards[k].failures) << "shard " << k;
  }
}

TEST(Manifest, TextIsOneObjectPerLineWithPrefix) {
  const std::string text = manifest_to_string(sample());
  EXPECT_EQ(text.rfind("ORCH_MANIFEST {\"type\":\"run\"", 0), 0u);
  EXPECT_NE(text.find("ORCH_MANIFEST {\"type\":\"shard\",\"shard\":0"),
            std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Manifest, ParserIgnoresForeignLines) {
  // The manifest may sit in a log stream with other one-liners around it.
  const std::string text = "# scribble\n" + manifest_to_string(sample()) +
                           "ORCH_JSON {\"type\":\"done\"}\n";
  EXPECT_EQ(parse_manifest(text).shards.size(), 3u);
}

TEST(Manifest, RejectsMissingRunRecord) {
  EXPECT_THROW(parse_manifest(""), std::invalid_argument);
  EXPECT_THROW(parse_manifest("ORCH_MANIFEST {\"type\":\"shard\",\"shard\":0,"
                              "\"state\":\"open\",\"spawned\":0,"
                              "\"failures\":0}\n"),
               std::invalid_argument);
}

TEST(Manifest, RejectsShardCountMismatch) {
  Manifest m = sample();
  m.shards.pop_back();  // run record still says workers = 3
  EXPECT_THROW(parse_manifest(manifest_to_string(m)), std::invalid_argument);
}

TEST(Manifest, RejectsOutOfOrderShards) {
  std::string text = manifest_to_string(sample());
  const std::size_t one = text.find("\"shard\":1");
  ASSERT_NE(one, std::string::npos);
  text[one + 9 - 1] = '2';  // duplicate index 2; order now 0,2,2
  EXPECT_THROW(parse_manifest(text), std::invalid_argument);
}

TEST(Manifest, RejectsUnknownState) {
  std::string text = manifest_to_string(sample());
  const std::size_t at = text.find("\"state\":\"open\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 14, "\"state\":\"odd!\"");
  EXPECT_THROW(parse_manifest(text), std::invalid_argument);
}

TEST(Manifest, RejectsNonNumericCounters) {
  // A garbled spawned counter must throw, not silently parse as 0 — the
  // attempt-path collision guarantee on resume depends on it.
  std::string text = manifest_to_string(sample());
  const std::size_t at = text.find("\"spawned\":1");
  ASSERT_NE(at, std::string::npos);
  text[at + 10] = 'x';  // "spawned":x
  EXPECT_THROW(parse_manifest(text), std::invalid_argument);

  std::string negative = manifest_to_string(sample());
  const std::size_t sp = negative.find("\"spawned\":2");
  ASSERT_NE(sp, std::string::npos);
  negative.replace(sp, 11, "\"spawned\":-2");
  EXPECT_THROW(parse_manifest(negative), std::invalid_argument);
}

TEST(Manifest, RejectsDuplicateRunRecord) {
  const std::string text = manifest_to_string(sample());
  const std::string run_line = text.substr(0, text.find('\n') + 1);
  EXPECT_THROW(parse_manifest(run_line + text), std::invalid_argument);
}

TEST(Manifest, SaveLoadRoundTripsOnDisk) {
  const fs::path dir =
      fs::temp_directory_path() / "manytiers_manifest_test";
  fs::create_directories(dir);
  const fs::path path = dir / "manifest.orch";
  const Manifest m = sample();
  save_manifest(path.string(), m);
  const Manifest back = load_manifest(path.string());
  EXPECT_EQ(manifest_to_string(back), manifest_to_string(m));
  // Durable write must not leave its temp file behind.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  fs::remove_all(dir);
}

TEST(Manifest, LoadMissingFileThrows) {
  EXPECT_ANY_THROW(load_manifest("/nonexistent/manifest.orch"));
}

}  // namespace
}  // namespace manytiers::orchestrator
