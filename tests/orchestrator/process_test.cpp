// The POSIX process layer, exercised against /bin/sh: exit codes,
// termination signals, env injection, log redirection, non-blocking
// reaps, and the kill path the timeout handler uses.
#include "orchestrator/process.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace manytiers::orchestrator {
namespace {

ExitStatus wait_until_exit(pid_t pid) {
  for (int i = 0; i < 5000; ++i) {
    if (const auto status = try_wait(pid)) return *status;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ADD_FAILURE() << "child " << pid << " did not exit within 10 s";
  return kill_and_reap(pid);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Process, ReportsExitCodes) {
  const pid_t pid = spawn_process({{"/bin/sh", "-c", "exit 3"}, {}, {}});
  const auto status = wait_until_exit(pid);
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 3);
  EXPECT_FALSE(status.success());

  const pid_t ok = spawn_process({{"/bin/sh", "-c", "exit 0"}, {}, {}});
  EXPECT_TRUE(wait_until_exit(ok).success());
}

TEST(Process, ReportsTerminationSignals) {
  const pid_t pid =
      spawn_process({{"/bin/sh", "-c", "kill -9 $$"}, {}, {}});
  const auto status = wait_until_exit(pid);
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.signal, 9);
  EXPECT_FALSE(status.success());
}

TEST(Process, InjectsEnvAndRedirectsOutputToLog) {
  const std::string log = temp_path("process_env_test.log");
  const pid_t pid = spawn_process({{"/bin/sh", "-c",
                                    "echo marker-$MANYTIERS_TEST_VALUE; "
                                    "echo on-stderr 1>&2"},
                                   {"MANYTIERS_TEST_VALUE=42"},
                                   log});
  EXPECT_TRUE(wait_until_exit(pid).success());
  std::ifstream in(log);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("marker-42"), std::string::npos);
  EXPECT_NE(buf.str().find("on-stderr"), std::string::npos);
  std::remove(log.c_str());
}

TEST(Process, TryWaitIsNonBlockingAndKillReaps) {
  // Spawn sleep directly (no shell): the kill must hit the long-running
  // process itself, and no orphan may outlive the test holding its
  // stdout pipe open (ctest waits for pipe EOF, not just child exit).
  const pid_t pid = spawn_process({{"/bin/sleep", "600"}, {}, {}});
  EXPECT_FALSE(try_wait(pid).has_value());  // still running
  const auto status = kill_and_reap(pid);
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.signal, SIGKILL);
}

TEST(Process, ExecFailureSurfacesAs127) {
  const pid_t pid =
      spawn_process({{"/nonexistent/definitely-not-a-binary"}, {}, {}});
  const auto status = wait_until_exit(pid);
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 127);
}

TEST(Process, RejectsEmptyArgv) {
  EXPECT_THROW(spawn_process({}), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::orchestrator
