#include "demand/estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "demand/ced.hpp"
#include "demand/logit.hpp"
#include "util/rng.hpp"

namespace manytiers::demand {
namespace {

// Simulate CED flows at a few historical prices.
std::vector<std::vector<PriceDemandPoint>> ced_histories(
    double alpha, double noise_sd, util::Rng& rng, std::size_t flows = 20,
    std::size_t periods = 6) {
  const CedModel model(alpha);
  std::vector<std::vector<PriceDemandPoint>> out(flows);
  for (auto& history : out) {
    const double v = rng.uniform(1.0, 50.0);
    for (std::size_t t = 0; t < periods; ++t) {
      PriceDemandPoint obs;
      obs.price = rng.uniform(5.0, 30.0);
      obs.quantity =
          model.quantity(v, obs.price) * std::exp(rng.normal(0.0, noise_sd));
      history.push_back(obs);
    }
  }
  return out;
}

TEST(EstimateCedAlpha, RecoversAlphaExactlyFromCleanData) {
  util::Rng rng(1);
  for (const double alpha : {1.1, 1.7, 3.3}) {
    const auto histories = ced_histories(alpha, 0.0, rng);
    const auto fit = estimate_ced_alpha(histories);
    EXPECT_NEAR(fit.alpha, alpha, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
    EXPECT_EQ(fit.observations, 20u * 6u);
  }
}

TEST(EstimateCedAlpha, RobustToDemandNoise) {
  util::Rng rng(2);
  const auto histories = ced_histories(2.0, 0.15, rng, 60, 8);
  const auto fit = estimate_ced_alpha(histories);
  EXPECT_NEAR(fit.alpha, 2.0, 0.15);
  EXPECT_GT(fit.r_squared, 0.8);
}

TEST(EstimateCedAlpha, UnknownValuationsDoNotBias) {
  // Flows with wildly different valuations but the same alpha: the
  // within-flow demeaning removes v completely.
  const CedModel model(1.5);
  std::vector<std::vector<PriceDemandPoint>> histories;
  for (const double v : {0.1, 1.0, 1000.0}) {
    std::vector<PriceDemandPoint> h;
    for (const double p : {10.0, 20.0}) {
      h.push_back({p, model.quantity(v, p)});
    }
    histories.push_back(h);
  }
  EXPECT_NEAR(estimate_ced_alpha(histories).alpha, 1.5, 1e-9);
}

TEST(EstimateCedAlpha, Validates) {
  EXPECT_THROW(estimate_ced_alpha({}), std::invalid_argument);
  // Single observation per flow.
  std::vector<std::vector<PriceDemandPoint>> one{{{10.0, 1.0}}};
  EXPECT_THROW(estimate_ced_alpha(one), std::invalid_argument);
  // No price variation anywhere.
  std::vector<std::vector<PriceDemandPoint>> flat{
      {{10.0, 1.0}, {10.0, 1.0}}};
  EXPECT_THROW(estimate_ced_alpha(flat), std::invalid_argument);
  // Non-positive values.
  std::vector<std::vector<PriceDemandPoint>> bad{
      {{10.0, 1.0}, {-1.0, 2.0}}};
  EXPECT_THROW(estimate_ced_alpha(bad), std::invalid_argument);
}

TEST(EstimateCedValuations, RecoversGeneratingValuations) {
  const CedModel model(2.5);
  const std::vector<double> truth{2.0, 7.5, 40.0};
  std::vector<std::vector<PriceDemandPoint>> histories;
  for (const double v : truth) {
    std::vector<PriceDemandPoint> h;
    for (const double p : {8.0, 16.0, 24.0}) {
      h.push_back({p, model.quantity(v, p)});
    }
    histories.push_back(h);
  }
  const auto estimated = estimate_ced_valuations(histories, 2.5);
  ASSERT_EQ(estimated.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(estimated[i], truth[i], 1e-9 * truth[i]);
  }
}

TEST(EstimateCedValuations, Validates) {
  std::vector<std::vector<PriceDemandPoint>> h{{{10.0, 1.0}}};
  EXPECT_THROW(estimate_ced_valuations(h, 1.0), std::invalid_argument);
  std::vector<std::vector<PriceDemandPoint>> empty{{}};
  EXPECT_THROW(estimate_ced_valuations(empty, 2.0), std::invalid_argument);
}

TEST(EstimateLogitAlpha, RecoversAlphaFromSimulatedMarket) {
  // Simulate a 3-flow logit market at several price vectors and estimate
  // alpha from each flow's (price, share, s0) history.
  const double alpha = 1.3;
  const LogitModel model(alpha, 100.0);
  const std::vector<double> v{2.0, 1.0, 3.0};
  util::Rng rng(4);
  std::vector<std::vector<PriceSharePoint>> histories(v.size());
  for (int t = 0; t < 8; ++t) {
    std::vector<double> prices;
    for (std::size_t i = 0; i < v.size(); ++i) {
      prices.push_back(rng.uniform(0.5, 3.0));
    }
    const auto shares = model.shares(v, prices);
    const double s0 = model.no_purchase_share(v, prices);
    for (std::size_t i = 0; i < v.size(); ++i) {
      histories[i].push_back({prices[i], shares[i], s0});
    }
  }
  const auto fit = estimate_logit_alpha(histories);
  EXPECT_NEAR(fit.alpha, alpha, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(EstimateLogitAlpha, Validates) {
  EXPECT_THROW(estimate_logit_alpha({}), std::invalid_argument);
  std::vector<std::vector<PriceSharePoint>> bad{
      {{1.0, 0.5, 0.2}, {2.0, 1.5, 0.2}}};  // share >= 1
  EXPECT_THROW(estimate_logit_alpha(bad), std::invalid_argument);
}

TEST(Estimation, RoundTripThroughCalibration) {
  // End-to-end: simulate demand responses with one alpha, estimate it,
  // and check the estimated alpha prices a flow near the true optimum.
  const double true_alpha = 1.8;
  util::Rng rng(6);
  const auto histories = ced_histories(true_alpha, 0.05, rng, 40, 6);
  const auto fit = estimate_ced_alpha(histories);
  const CedModel truth(true_alpha);
  const CedModel fitted(fit.alpha);
  const double c = 3.0;
  EXPECT_NEAR(fitted.optimal_price(c), truth.optimal_price(c),
              0.1 * truth.optimal_price(c));
}

}  // namespace
}  // namespace manytiers::demand
