#include "demand/logit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

namespace manytiers::demand {
namespace {

TEST(LogitModel, ValidatesConstruction) {
  EXPECT_THROW(LogitModel(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogitModel(1.0, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(LogitModel(1.0, 100.0));
}

TEST(LogitModel, SharesMatchEq6) {
  const LogitModel m(1.0, 1.0);
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> p{0.5, 0.5};
  const auto s = m.shares(v, p);
  const double e1 = std::exp(1.0 * (1.0 - 0.5));
  const double e2 = std::exp(1.0 * (2.0 - 0.5));
  EXPECT_NEAR(s[0], e1 / (e1 + e2 + 1.0), 1e-12);
  EXPECT_NEAR(s[1], e2 / (e1 + e2 + 1.0), 1e-12);
}

TEST(LogitModel, SharesPlusOutsideOptionSumToOne) {
  const LogitModel m(2.0, 50.0);
  const std::vector<double> v{1.0, 1.5, 0.2};
  const std::vector<double> p{0.9, 1.1, 0.1};
  const auto s = m.shares(v, p);
  const double total = std::accumulate(s.begin(), s.end(), 0.0);
  EXPECT_NEAR(total + m.no_purchase_share(v, p), 1.0, 1e-12);
}

TEST(LogitModel, SharesAreStableForExtremeUtilities) {
  const LogitModel m(10.0, 1.0);
  const std::vector<double> v{100.0, 1.0};
  const std::vector<double> p{1.0, 1.0};
  const auto s = m.shares(v, p);
  EXPECT_NEAR(s[0], 1.0, 1e-9);
  EXPECT_GE(s[1], 0.0);
  EXPECT_FALSE(std::isnan(s[0]));
}

TEST(LogitModel, DemandIsDecreasingInOwnPrice) {
  const LogitModel m(1.0, 1.0);
  const std::vector<double> v{1.6, 1.0};
  double prev = 2.0;
  for (double p2 = 0.0; p2 <= 4.0; p2 += 0.25) {
    const std::vector<double> p{1.0, std::max(p2, 1e-9)};
    const double s2 = m.shares(v, p)[1];
    EXPECT_LT(s2, prev);
    prev = s2;
  }
}

TEST(LogitModel, DemandsAreNotSeparable) {
  // Raising flow 2's price must increase flow 1's demand (substitution).
  const LogitModel m(1.0, 1.0);
  const std::vector<double> v{1.6, 1.0};
  const std::vector<double> cheap{1.0, 0.5};
  const std::vector<double> dear{1.0, 3.0};
  EXPECT_GT(m.shares(v, dear)[0], m.shares(v, cheap)[0]);
}

TEST(LogitModel, QuantitiesScaleWithMarketSize) {
  const std::vector<double> v{1.0};
  const std::vector<double> p{0.5};
  const LogitModel small(1.0, 10.0), big(1.0, 1000.0);
  EXPECT_NEAR(big.quantities(v, p)[0] / small.quantities(v, p)[0], 100.0,
              1e-9);
}

TEST(LogitModel, ProfitMatchesEq8ByHand) {
  const LogitModel m(1.0, 100.0);
  const std::vector<double> v{2.0};
  const std::vector<double> c{0.5};
  const std::vector<double> p{1.5};
  const double share = std::exp(2.0 - 1.5) / (std::exp(2.0 - 1.5) + 1.0);
  EXPECT_NEAR(m.total_profit(v, c, p), 100.0 * share * 1.0, 1e-9);
}

TEST(LogitModel, OptimalPricesSatisfyEq9) {
  // p*_i = c_i + 1/(alpha s0) at the optimum.
  const LogitModel m(1.3, 500.0);
  const std::vector<double> v{2.0, 1.0, 3.0};
  const std::vector<double> c{0.5, 0.7, 1.5};
  const auto res = m.optimal_prices(v, c);
  ASSERT_TRUE(res.converged);
  const double s0 = m.no_purchase_share(v, res.prices);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(res.prices[i] - c[i], 1.0 / (1.3 * s0), 1e-7);
  }
}

TEST(LogitModel, OptimalMarkupIsCommonAcrossFlows) {
  const LogitModel m(2.0, 10.0);
  const std::vector<double> v{1.0, 5.0};
  const std::vector<double> c{0.2, 2.0};
  const auto res = m.optimal_prices(v, c);
  EXPECT_NEAR(res.prices[0] - c[0], res.prices[1] - c[1], 1e-10);
  EXPECT_NEAR(res.prices[0] - c[0], res.markup, 1e-10);
}

TEST(LogitModel, GradientHeuristicAgreesWithExactOptimum) {
  // The paper's gradient-descent heuristic should land on the same profit
  // as the closed-form equal-markup solution.
  const LogitModel m(1.1, 200.0);
  const std::vector<double> v{3.0, 2.5, 4.0, 1.0};
  const std::vector<double> c{1.0, 0.5, 2.0, 0.3};
  const auto exact = m.optimal_prices(v, c);
  const auto grad = m.gradient_prices(v, c);
  EXPECT_NEAR(grad.profit, exact.profit, 1e-3 * exact.profit);
}

TEST(LogitModel, NoPriceVectorBeatsTheExactOptimum) {
  const LogitModel m(1.5, 100.0);
  const std::vector<double> v{2.0, 1.2};
  const std::vector<double> c{0.6, 0.9};
  const auto res = m.optimal_prices(v, c);
  for (const double d0 : {-0.2, 0.0, 0.2}) {
    for (const double d1 : {-0.2, 0.0, 0.2}) {
      const std::vector<double> p{res.prices[0] + d0, res.prices[1] + d1};
      EXPECT_LE(m.total_profit(v, c, p), res.profit + 1e-9);
    }
  }
}

TEST(LogitModel, OptimalPricesStableUnderLargeAlpha) {
  const LogitModel m(10.0, 100.0);
  const std::vector<double> v{20.0, 18.0};
  const std::vector<double> c{2.0, 1.0};
  const auto res = m.optimal_prices(v, c);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(std::isfinite(res.profit));
  EXPECT_GT(res.profit, 0.0);
}

TEST(LogitModel, BundleValuationIsLogSumExp) {
  const LogitModel m(2.0, 1.0);
  const std::vector<double> v{1.0, 3.0};
  const double vb = m.bundle_valuation(v);
  EXPECT_NEAR(vb,
              std::log(std::exp(2.0 * 1.0) + std::exp(2.0 * 3.0)) / 2.0,
              1e-12);
  EXPECT_GT(vb, 3.0);          // bundling adds option value
  EXPECT_LT(vb, 3.0 + 0.5);    // but bounded by max + log(n)/alpha
}

TEST(LogitModel, BundleCostIsShareWeighted) {
  const LogitModel m(1.0, 1.0);
  const std::vector<double> v{1.0, 1.0};
  const std::vector<double> c{2.0, 4.0};
  EXPECT_NEAR(m.bundle_cost(v, c), 3.0, 1e-12);  // equal weights -> mean
  const std::vector<double> v2{5.0, 1.0};
  EXPECT_LT(m.bundle_cost(v2, c), 2.1);  // dominated by the high-v flow
}

TEST(LogitModel, BundleAggregationPreservesSharesAndProfit) {
  // Eq. 10/11 consistency: a bundle priced at P behaves exactly like its
  // member flows each priced at P.
  const LogitModel m(1.4, 100.0);
  const std::vector<double> v{1.0, 2.0, 2.5};
  const std::vector<double> c{0.3, 0.8, 1.1};
  const double price = 1.9;
  // Flow-level: all three at the common price.
  const std::vector<double> p_flows(3, price);
  const double profit_flows = m.total_profit(v, c, p_flows);
  // Bundle-level: one aggregate good.
  const std::vector<double> vb{m.bundle_valuation(v)};
  const std::vector<double> cb{m.bundle_cost(v, c)};
  const std::vector<double> pb{price};
  const double profit_bundle = m.total_profit(vb, cb, pb);
  EXPECT_NEAR(profit_flows, profit_bundle, 1e-9 * std::abs(profit_flows));
}

TEST(LogitModel, FitValuationsReproducesObservedDemand) {
  const double alpha = 1.1, p0 = 20.0, s0 = 0.2;
  const std::vector<double> q{100.0, 40.0, 5.0};
  const auto fit = LogitModel::fit_valuations(q, p0, s0, alpha);
  const double total = 145.0;
  EXPECT_NEAR(fit.market_size, total / (1.0 - s0), 1e-9);
  const LogitModel m(alpha, fit.market_size);
  const std::vector<double> prices(q.size(), p0);
  const auto quantities = m.quantities(fit.valuations, prices);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_NEAR(quantities[i], q[i], 1e-6 * q[i]);
  }
  EXPECT_NEAR(m.no_purchase_share(fit.valuations, prices), s0, 1e-9);
}

TEST(LogitModel, FitGammaMakesBlendedPriceOptimal) {
  const double alpha = 1.1, p0 = 20.0, s0 = 0.2;
  const std::vector<double> q{100.0, 40.0, 5.0, 70.0};
  const std::vector<double> fd{1.0, 4.0, 9.0, 2.0};
  const auto fit = LogitModel::fit_valuations(q, p0, s0, alpha);
  const LogitModel m(alpha, fit.market_size);
  const double gamma = m.fit_gamma(fit.valuations, fd, p0);
  EXPECT_GT(gamma, 0.0);
  // With a single blended bundle, the optimal common price must be P0.
  std::vector<double> c(fd.size());
  for (std::size_t i = 0; i < fd.size(); ++i) c[i] = gamma * fd[i];
  const std::vector<double> vb{m.bundle_valuation(fit.valuations)};
  const std::vector<double> cb{m.bundle_cost(fit.valuations, c)};
  const auto res = m.optimal_prices(vb, cb);
  EXPECT_NEAR(res.prices[0], p0, 1e-6 * p0);
}

TEST(LogitModel, FitGammaRejectsInfeasibleCalibration) {
  // alpha * P0 <= 1/s0 makes the blended rate unprofitable to sustain.
  const double alpha = 0.1, p0 = 2.0, s0 = 0.2;
  const std::vector<double> q{10.0, 20.0};
  const std::vector<double> fd{1.0, 2.0};
  const auto fit = LogitModel::fit_valuations(q, p0, s0, alpha);
  const LogitModel m(alpha, fit.market_size);
  EXPECT_THROW(m.fit_gamma(fit.valuations, fd, p0), std::domain_error);
}

TEST(LogitModel, PotentialProfitWeightIsProportionalToDemand) {
  const LogitModel m(1.0, 1.0);
  EXPECT_DOUBLE_EQ(m.potential_profit_weight(10.0), 10.0);
  EXPECT_THROW(m.potential_profit_weight(0.0), std::invalid_argument);
}

TEST(LogitModel, ValidatesVectorArguments) {
  const LogitModel m(1.0, 1.0);
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(m.shares({}, {}), std::invalid_argument);
  EXPECT_THROW(m.shares(one, two), std::invalid_argument);
  EXPECT_THROW(m.total_profit(one, one, two), std::invalid_argument);
  EXPECT_THROW(m.bundle_valuation({}), std::invalid_argument);
  EXPECT_THROW(m.bundle_cost(one, two), std::invalid_argument);
  EXPECT_THROW(LogitModel::fit_valuations({}, 1.0, 0.2, 1.0),
               std::invalid_argument);
  EXPECT_THROW(LogitModel::fit_valuations(one, 1.0, 1.5, 1.0),
               std::invalid_argument);
  EXPECT_THROW(LogitModel::fit_valuations(one, -1.0, 0.2, 1.0),
               std::invalid_argument);
}

// Property sweep: Eq. 9 holds across (alpha, s0-ish spread) combinations.
class LogitMarkupProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LogitMarkupProperty, MarkupEqualsInverseAlphaS0) {
  const auto [alpha, v_scale] = GetParam();
  const LogitModel m(alpha, 100.0);
  const std::vector<double> v{v_scale, v_scale * 0.8, v_scale * 1.2};
  const std::vector<double> c{0.4, 0.6, 0.9};
  const auto res = m.optimal_prices(v, c);
  const double s0 = m.no_purchase_share(v, res.prices);
  EXPECT_NEAR(res.markup, 1.0 / (alpha * s0), 1e-6 * res.markup);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LogitMarkupProperty,
    ::testing::Combine(::testing::Values(0.5, 1.0, 1.1, 2.0, 5.0),
                       ::testing::Values(1.0, 3.0, 8.0)));

}  // namespace
}  // namespace manytiers::demand
