#include "demand/ced.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/optimize.hpp"

namespace manytiers::demand {
namespace {

TEST(CedModel, RejectsAlphaAtOrBelowOne) {
  EXPECT_THROW(CedModel(1.0), std::invalid_argument);
  EXPECT_THROW(CedModel(0.5), std::invalid_argument);
  EXPECT_NO_THROW(CedModel(1.0001));
}

TEST(CedModel, QuantityFollowsEq2) {
  const CedModel m(2.0);
  EXPECT_DOUBLE_EQ(m.quantity(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.quantity(2.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(m.quantity(1.0, 2.0), 0.25);
}

TEST(CedModel, QuantityIsDecreasingInPrice) {
  const CedModel m(1.5);
  double prev = m.quantity(3.0, 0.5);
  for (double p = 1.0; p < 10.0; p += 0.5) {
    const double q = m.quantity(3.0, p);
    EXPECT_LT(q, prev);
    prev = q;
  }
}

TEST(CedModel, HigherAlphaMeansMoreElasticDemand) {
  // Above the valuation point, a price increase cuts demand more when
  // alpha is larger (Fig. 3's intuition).
  const CedModel low(1.4), high(3.3);
  const double ratio_low = low.quantity(1.0, 2.0) / low.quantity(1.0, 1.5);
  const double ratio_high = high.quantity(1.0, 2.0) / high.quantity(1.0, 1.5);
  EXPECT_LT(ratio_high, ratio_low);
}

TEST(CedModel, OptimalPriceFormulaEq4) {
  const CedModel m(2.0);
  EXPECT_DOUBLE_EQ(m.optimal_price(1.0), 2.0);
  EXPECT_DOUBLE_EQ(m.optimal_price(2.0), 4.0);
  const CedModel m11(1.1);
  EXPECT_NEAR(m11.optimal_price(1.0), 11.0, 1e-12);
}

TEST(CedModel, OptimalPriceMaximizesProfitNumerically) {
  for (const double alpha : {1.2, 2.0, 4.0}) {
    const CedModel m(alpha);
    for (const double c : {0.5, 1.0, 3.0}) {
      const auto peak = util::maximize_scalar(
          [&](double p) { return m.flow_profit(1.5, c, p); }, c + 1e-6,
          100.0 * c);
      EXPECT_NEAR(peak.x, m.optimal_price(c), 1e-4 * m.optimal_price(c))
          << "alpha=" << alpha << " c=" << c;
    }
  }
}

TEST(CedModel, PotentialProfitMatchesProfitAtOptimalPrice) {
  const CedModel m(2.0);
  for (const double c : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(m.potential_profit(1.0, c),
                m.flow_profit(1.0, c, m.optimal_price(c)), 1e-12);
  }
}

TEST(CedModel, Figure4Values) {
  // Paper Fig. 4: v = 1, alpha = 2; c = 1 -> p* = 2, profit 0.25;
  // c = 2 -> p* = 4, profit 0.125.
  const CedModel m(2.0);
  EXPECT_DOUBLE_EQ(m.optimal_price(1.0), 2.0);
  EXPECT_NEAR(m.potential_profit(1.0, 1.0), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(m.optimal_price(2.0), 4.0);
  EXPECT_NEAR(m.potential_profit(1.0, 2.0), 0.125, 1e-12);
}

TEST(CedModel, BundlePriceReducesToSingleFlowOptimum) {
  const CedModel m(1.7);
  const std::vector<double> v{2.0};
  const std::vector<double> c{1.3};
  EXPECT_NEAR(m.bundle_price(v, c), m.optimal_price(1.3), 1e-12);
}

TEST(CedModel, BundlePriceIsWeightedBetweenFlowOptima) {
  const CedModel m(2.0);
  const std::vector<double> v{1.0, 1.0};
  const std::vector<double> c{1.0, 2.0};
  const double p = m.bundle_price(v, c);
  EXPECT_GT(p, m.optimal_price(1.0));
  EXPECT_LT(p, m.optimal_price(2.0));
}

TEST(CedModel, BundlePriceMaximizesBundleProfitNumerically) {
  const CedModel m(1.4);
  const std::vector<double> v{1.0, 2.0, 0.7};
  const std::vector<double> c{0.8, 2.5, 1.1};
  const double p_star = m.bundle_price(v, c);
  const auto bundle_profit = [&](double p) {
    double total = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      total += m.flow_profit(v[i], c[i], p);
    }
    return total;
  };
  const auto peak = util::maximize_scalar(bundle_profit, 0.9, 50.0);
  EXPECT_NEAR(p_star, peak.x, 1e-4 * p_star);
  EXPECT_NEAR(bundle_profit(p_star), peak.value, 1e-9);
}

TEST(CedModel, TotalProfitSumsFlowProfits) {
  const CedModel m(2.0);
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> c{1.0, 1.0};
  const std::vector<double> p{2.0, 2.0};
  EXPECT_DOUBLE_EQ(m.total_profit(v, c, p),
                   m.flow_profit(1.0, 1.0, 2.0) + m.flow_profit(2.0, 1.0, 2.0));
}

TEST(CedModel, FitValuationsInvertsDemand) {
  const CedModel m(1.8);
  const std::vector<double> q{4.0, 100.0, 0.5};
  const double p0 = 20.0;
  const auto fit = m.fit_valuations(q, p0);
  ASSERT_EQ(fit.valuations.size(), q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    // Feeding the fitted valuation back through Eq. 2 at P0 must
    // reproduce the observed demand.
    EXPECT_NEAR(m.quantity(fit.valuations[i], p0), q[i], 1e-9 * q[i]);
  }
}

TEST(CedModel, FitGammaMakesBlendedPriceOptimal) {
  // The calibration invariant (paper §4.1.3): with c_i = gamma f(d_i),
  // the single-bundle profit-maximizing price is exactly P0.
  const CedModel m(1.1);
  const std::vector<double> q{10.0, 5.0, 80.0, 2.0};
  const std::vector<double> fd{1.0, 3.0, 0.5, 10.0};
  const double p0 = 20.0;
  const auto fit = m.fit_valuations(q, p0);
  const double gamma = m.fit_gamma(fit.valuations, fd, p0);
  EXPECT_GT(gamma, 0.0);
  std::vector<double> c(fd.size());
  for (std::size_t i = 0; i < fd.size(); ++i) c[i] = gamma * fd[i];
  EXPECT_NEAR(m.bundle_price(fit.valuations, c), p0, 1e-9 * p0);
}

TEST(CedModel, ValidatesArguments) {
  const CedModel m(2.0);
  EXPECT_THROW(m.quantity(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.quantity(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(m.optimal_price(0.0), std::invalid_argument);
  EXPECT_THROW(m.potential_profit(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(m.bundle_price({}, {}), std::invalid_argument);
  EXPECT_THROW(m.fit_valuations({}, 1.0), std::invalid_argument);
  EXPECT_THROW(
      m.fit_valuations(std::vector<double>{1.0}, 0.0), std::invalid_argument);
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(m.bundle_price(one, two), std::invalid_argument);
  EXPECT_THROW(m.total_profit(one, one, two), std::invalid_argument);
  EXPECT_THROW(m.fit_gamma(one, two, 1.0), std::invalid_argument);
}

// Property sweep: the optimal-price formula beats any nearby price across
// a grid of (alpha, cost) combinations.
class CedOptimalityProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CedOptimalityProperty, NoNearbyPriceBeatsTheFormula) {
  const auto [alpha, cost] = GetParam();
  const CedModel m(alpha);
  const double p_star = m.optimal_price(cost);
  const double best = m.flow_profit(1.0, cost, p_star);
  for (const double bump : {0.8, 0.9, 0.99, 1.01, 1.1, 1.25}) {
    EXPECT_GE(best, m.flow_profit(1.0, cost, p_star * bump));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CedOptimalityProperty,
    ::testing::Combine(::testing::Values(1.1, 1.5, 2.0, 3.3, 6.0),
                       ::testing::Values(0.1, 1.0, 7.5)));

}  // namespace
}  // namespace manytiers::demand
