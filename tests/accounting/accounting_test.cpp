#include <gtest/gtest.h>

#include "accounting/flow_acct.hpp"
#include "accounting/link_acct.hpp"
#include "netflow/exporter.hpp"

namespace manytiers::accounting {
namespace {

Rib three_tier_rib() {
  Rib rib;
  Route metro;
  metro.prefix = geo::parse_prefix("100.0.0.0/8");
  metro.tag = TierTag{65000, 1};
  rib.add(metro);
  Route national;
  national.prefix = geo::parse_prefix("101.0.0.0/8");
  national.tag = TierTag{65000, 2};
  rib.add(national);
  Route global;
  global.prefix = geo::parse_prefix("0.0.0.0/0");
  global.tag = TierTag{65000, 3};
  rib.add(global);
  return rib;
}

TEST(LinkAccounting, ProvisionsOneSessionPerTier) {
  const auto rib = three_tier_rib();
  const LinkAccounting acct(rib);
  EXPECT_EQ(acct.session_count(), 3u);
}

TEST(LinkAccounting, CountsBytesOnTheRightLink) {
  const auto rib = three_tier_rib();
  LinkAccounting acct(rib);
  acct.send(geo::parse_ipv4("100.1.1.1"), 1000);  // tier 1
  acct.send(geo::parse_ipv4("100.2.2.2"), 500);   // tier 1
  acct.send(geo::parse_ipv4("101.1.1.1"), 700);   // tier 2
  acct.send(geo::parse_ipv4("8.8.8.8"), 300);     // tier 3 (default)
  const auto usage = acct.poll();
  ASSERT_EQ(usage.size(), 3u);
  EXPECT_EQ(usage[0].tier, 1);
  EXPECT_EQ(usage[0].bytes, 1500u);
  EXPECT_EQ(usage[1].bytes, 700u);
  EXPECT_EQ(usage[2].bytes, 300u);
  EXPECT_EQ(acct.unrouted_bytes(), 0u);
}

TEST(LinkAccounting, TracksUnroutedTraffic) {
  Rib rib;
  Route only;
  only.prefix = geo::parse_prefix("100.0.0.0/8");
  only.tag = TierTag{65000, 1};
  rib.add(only);
  LinkAccounting acct(rib);
  acct.send(geo::parse_ipv4("9.9.9.9"), 400);
  EXPECT_EQ(acct.unrouted_bytes(), 400u);
  EXPECT_EQ(acct.poll()[0].bytes, 0u);
}

netflow::FlowRecord record_to(const char* dst, std::uint64_t sampled_bytes) {
  netflow::FlowRecord r;
  r.key.src_ip = geo::parse_ipv4("10.0.0.1");
  r.key.dst_ip = geo::parse_ipv4(dst);
  r.key.dst_port = 443;
  r.sampled_bytes = sampled_bytes;
  r.sampled_packets = 1 + sampled_bytes / 1500;
  return r;
}

TEST(FlowAccounting, ScalesAndBinsByTier) {
  const auto rib = three_tier_rib();
  FlowAccounting acct(rib, 100);
  acct.ingest(record_to("100.1.1.1", 15));
  acct.ingest(record_to("101.1.1.1", 7));
  const auto usage = acct.usage();
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_EQ(usage[0].tier, 1);
  EXPECT_EQ(usage[0].bytes, 1500u);
  EXPECT_EQ(usage[1].tier, 2);
  EXPECT_EQ(usage[1].bytes, 700u);
  EXPECT_EQ(acct.records_processed(), 2u);
}

TEST(FlowAccounting, SingleSessionRegardlessOfTiers) {
  EXPECT_EQ(FlowAccounting::session_count(), 1u);
}

TEST(FlowAccounting, RejectsZeroSamplingRate) {
  const auto rib = three_tier_rib();
  EXPECT_THROW(FlowAccounting(rib, 0), std::invalid_argument);
}

TEST(FlowAccounting, UnroutedTrafficIsTracked) {
  Rib rib;
  Route only;
  only.prefix = geo::parse_prefix("100.0.0.0/8");
  only.tag = TierTag{65000, 1};
  rib.add(only);
  FlowAccounting acct(rib, 10);
  acct.ingest(record_to("50.0.0.1", 100));
  EXPECT_EQ(acct.unrouted_bytes(), 1000u);
  EXPECT_TRUE(acct.usage().empty());
}

TEST(Accounting, LinkAndFlowAccountingAgreeAtRateOne) {
  // The paper's two implementations must produce the same bill when
  // sampling is exact (rate 1).
  const auto rib = three_tier_rib();
  LinkAccounting link(rib);
  FlowAccounting flow(rib, 1);
  const struct {
    const char* dst;
    std::uint64_t bytes;
  } traffic[] = {
      {"100.1.1.1", 123456}, {"100.7.0.9", 999},   {"101.3.3.3", 5000},
      {"8.8.8.8", 42},       {"101.0.0.1", 77777},
  };
  for (const auto& t : traffic) {
    link.send(geo::parse_ipv4(t.dst), t.bytes);
    flow.ingest(record_to(t.dst, t.bytes));
  }
  const auto a = link.poll();
  const auto b = flow.usage();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tier, b[i].tier);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
}

TEST(Accounting, SampledFlowAccountingApproximatesLinkTruth) {
  // With 1-in-N sampling the flow-based bill is an unbiased estimate of
  // the link-based (exact) bill.
  const auto rib = three_tier_rib();
  LinkAccounting link(rib);
  FlowAccounting flow(rib, 50);
  netflow::SampledExporter exporter({.sampling_rate = 50, .window_seconds = 60},
                                    util::Rng(21));
  netflow::GroundTruthFlow gt;
  gt.key.src_ip = geo::parse_ipv4("10.0.0.1");
  gt.key.dst_ip = geo::parse_ipv4("100.1.1.1");
  gt.bytes = 30000000;
  gt.packets = 20000;
  const std::vector<netflow::RouterId> path{1};
  link.send(gt.key.dst_ip, gt.bytes);
  flow.ingest(exporter.export_flow(gt, path));
  ASSERT_EQ(flow.usage().size(), 1u);
  const double est = double(flow.usage()[0].bytes);
  EXPECT_NEAR(est, double(gt.bytes), 0.1 * double(gt.bytes));
}

}  // namespace
}  // namespace manytiers::accounting
