#include "accounting/policy.hpp"

#include <gtest/gtest.h>

namespace manytiers::accounting {
namespace {

// Upstream PoP "NYC": announces Europe-learned routes in the expensive
// tier 3 and regional routes in tier 1.
// Upstream PoP "London": the same European destinations in tier 1.
struct Fixture {
  Rib nyc_rib;
  Rib london_rib;
  RatePlan rates{{{1, 5.0}, {3, 22.0}}};

  Fixture() {
    Route nyc_regional;
    nyc_regional.prefix = geo::parse_prefix("100.0.0.0/8");
    nyc_regional.tag = TierTag{65000, 1};
    nyc_rib.add(nyc_regional);
    Route nyc_europe;
    nyc_europe.prefix = geo::parse_prefix("110.0.0.0/8");
    nyc_europe.tag = TierTag{65000, 3};  // trans-Atlantic: expensive
    nyc_rib.add(nyc_europe);

    Route london_europe;
    london_europe.prefix = geo::parse_prefix("110.0.0.0/8");
    london_europe.tag = TierTag{65000, 1};  // local in London
    london_rib.add(london_europe);
  }

  EgressPlanner planner(double backbone_to_london) {
    EgressPlanner p;
    p.add_egress({"NYC", &nyc_rib, &rates, 0.0});
    p.add_egress({"London", &london_rib, &rates, backbone_to_london});
    return p;
  }
};

TEST(EgressPlanner, HotPotatoWhenLocalTierIsCheap) {
  Fixture fx;
  const auto planner = fx.planner(4.0);
  const auto d = planner.plan(geo::parse_ipv4("100.1.1.1"));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->pop_name, "NYC");
  EXPECT_FALSE(d->cold_potato);
  EXPECT_DOUBLE_EQ(d->total_cost_per_mbps, 5.0);
}

TEST(EgressPlanner, ColdPotatoWhenTagRevealsExpensiveRoute) {
  // Europe via NYC costs tier 3 ($22); hauling to London ($4) and paying
  // tier 1 ($5) is cheaper -> the tag drives cold-potato routing, the
  // exact behaviour §5.1 describes.
  Fixture fx;
  const auto planner = fx.planner(4.0);
  const auto d = planner.plan(geo::parse_ipv4("110.1.1.1"));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->pop_name, "London");
  EXPECT_TRUE(d->cold_potato);
  EXPECT_DOUBLE_EQ(d->total_cost_per_mbps, 9.0);
  EXPECT_EQ(d->tier, 1);
}

TEST(EgressPlanner, ExpensiveBackboneKeepsHotPotato) {
  Fixture fx;
  const auto planner = fx.planner(30.0);  // hauling costs more than the tier gap
  const auto d = planner.plan(geo::parse_ipv4("110.1.1.1"));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->pop_name, "NYC");
  EXPECT_DOUBLE_EQ(d->total_cost_per_mbps, 22.0);
}

TEST(EgressPlanner, UnroutableDestination) {
  Fixture fx;
  const auto planner = fx.planner(4.0);
  EXPECT_FALSE(planner.plan(geo::parse_ipv4("9.9.9.9")).has_value());
}

TEST(EgressPlanner, CompareQuantifiesTagAwareSavings) {
  Fixture fx;
  const auto planner = fx.planner(4.0);
  const std::vector<std::pair<geo::IpV4, double>> demands{
      {geo::parse_ipv4("100.1.1.1"), 1000.0},  // regional, stays hot potato
      {geo::parse_ipv4("110.1.1.1"), 500.0},   // Europe, goes cold potato
  };
  const auto cmp = planner.compare(demands);
  EXPECT_EQ(cmp.unroutable, 0u);
  // Hot potato: 1000*5 + 500*22 = 16000; tag-aware: 1000*5 + 500*9 = 9500.
  EXPECT_DOUBLE_EQ(cmp.hot_potato_cost, 16000.0);
  EXPECT_DOUBLE_EQ(cmp.tag_aware_cost, 9500.0);
  EXPECT_LT(cmp.tag_aware_cost, cmp.hot_potato_cost);
}

TEST(EgressPlanner, CompareCountsUnroutables) {
  Fixture fx;
  const auto planner = fx.planner(4.0);
  const std::vector<std::pair<geo::IpV4, double>> demands{
      {geo::parse_ipv4("9.9.9.9"), 100.0}};
  const auto cmp = planner.compare(demands);
  EXPECT_EQ(cmp.unroutable, 1u);
  EXPECT_DOUBLE_EQ(cmp.tag_aware_cost, 0.0);
}

TEST(EgressPlanner, Validates) {
  EgressPlanner empty;
  EXPECT_THROW(empty.plan(geo::parse_ipv4("1.2.3.4")), std::logic_error);
  Fixture fx;
  EgressPlanner p;
  EXPECT_THROW(p.add_egress({"x", nullptr, &fx.rates, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(p.add_egress({"x", &fx.nyc_rib, nullptr, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(p.add_egress({"x", &fx.nyc_rib, &fx.rates, -1.0}),
               std::invalid_argument);
  const auto planner = fx.planner(1.0);
  const std::vector<std::pair<geo::IpV4, double>> bad{
      {geo::parse_ipv4("100.1.1.1"), 0.0}};
  EXPECT_THROW(planner.compare(bad), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::accounting
