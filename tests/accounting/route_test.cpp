#include "accounting/route.hpp"

#include <gtest/gtest.h>

namespace manytiers::accounting {
namespace {

Route make_route(const char* cidr, std::uint16_t tier) {
  Route r;
  r.prefix = geo::parse_prefix(cidr);
  r.tag = TierTag{65000, tier};
  return r;
}

TEST(TierTag, FormatsAsBgpCommunity) {
  EXPECT_EQ((TierTag{65000, 2}).to_string(), "65000:2");
  EXPECT_EQ((TierTag{64512, 0}).to_string(), "64512:0");
}

TEST(Rib, LongestPrefixMatchWins) {
  Rib rib;
  rib.add(make_route("0.0.0.0/0", 3));      // default: global transit tier
  rib.add(make_route("100.0.0.0/8", 2));    // regional
  rib.add(make_route("100.5.0.0/16", 1));   // on-net
  EXPECT_EQ(rib.tier_of(geo::parse_ipv4("100.5.9.9")), 1);
  EXPECT_EQ(rib.tier_of(geo::parse_ipv4("100.9.9.9")), 2);
  EXPECT_EQ(rib.tier_of(geo::parse_ipv4("9.9.9.9")), 3);
}

TEST(Rib, MissWithoutDefaultRoute) {
  Rib rib;
  rib.add(make_route("100.0.0.0/8", 1));
  EXPECT_FALSE(rib.tier_of(geo::parse_ipv4("99.0.0.1")).has_value());
  EXPECT_EQ(rib.lookup(geo::parse_ipv4("99.0.0.1")), nullptr);
}

TEST(Rib, ReplacementAnnouncementUpdatesTag) {
  Rib rib;
  rib.add(make_route("100.0.0.0/8", 1));
  rib.add(make_route("100.0.0.0/8", 2));
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.tier_of(geo::parse_ipv4("100.0.0.1")), 2);
}

TEST(Rib, TiersAreSortedAndDeduplicated) {
  Rib rib;
  rib.add(make_route("100.0.0.0/8", 2));
  rib.add(make_route("101.0.0.0/8", 1));
  rib.add(make_route("102.0.0.0/8", 2));
  EXPECT_EQ(rib.tiers(), (std::vector<std::uint16_t>{1, 2}));
}

TEST(Rib, RejectsMalformedPrefix) {
  Rib rib;
  Route bad;
  bad.prefix.address = geo::parse_ipv4("10.0.0.1");
  bad.prefix.length = 8;
  EXPECT_THROW(rib.add(bad), std::invalid_argument);
  Route bad_len;
  bad_len.prefix.address = 0;
  bad_len.prefix.length = 33;
  EXPECT_THROW(rib.add(bad_len), std::invalid_argument);
}

TEST(Rib, LookupReturnsFullRoute) {
  Rib rib;
  Route r = make_route("100.0.0.0/8", 1);
  r.description = "on-net customers";
  rib.add(r);
  const Route* found = rib.lookup(geo::parse_ipv4("100.1.2.3"));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->description, "on-net customers");
  EXPECT_EQ(found->tag.to_string(), "65000:1");
}

}  // namespace
}  // namespace manytiers::accounting
