#include "accounting/billing.hpp"

#include <gtest/gtest.h>

namespace manytiers::accounting {
namespace {

TEST(RatePlan, LooksUpTierRates) {
  const RatePlan plan{{{1, 5.0}, {2, 12.0}}};
  EXPECT_DOUBLE_EQ(plan.rate_for(1), 5.0);
  EXPECT_DOUBLE_EQ(plan.rate_for(2), 12.0);
  EXPECT_THROW(plan.rate_for(9), std::invalid_argument);
}

TEST(TieredInvoice, BillsEachTierAtItsRate) {
  // 1e6 bytes over 8 s = 1 Mbps per unit used below.
  const std::vector<TierUsage> usage{{1, 3000000}, {2, 1000000}};
  const RatePlan plan{{{1, 5.0}, {2, 12.0}}};
  const auto inv = tiered_invoice(usage, 8, plan);
  ASSERT_EQ(inv.lines.size(), 2u);
  EXPECT_NEAR(inv.lines[0].mbps, 3.0, 1e-9);
  EXPECT_NEAR(inv.lines[0].amount, 15.0, 1e-9);
  EXPECT_NEAR(inv.lines[1].amount, 12.0, 1e-9);
  EXPECT_NEAR(inv.total, 27.0, 1e-9);
}

TEST(BlendedInvoice, BillsEverythingAtOneRate) {
  const std::vector<TierUsage> usage{{1, 3000000}, {2, 1000000}};
  const auto inv = blended_invoice(usage, 8, 10.0);
  ASSERT_EQ(inv.lines.size(), 1u);
  EXPECT_NEAR(inv.lines[0].mbps, 4.0, 1e-9);
  EXPECT_NEAR(inv.total, 40.0, 1e-9);
  EXPECT_THROW(blended_invoice(usage, 8, 0.0), std::invalid_argument);
}

TEST(Invoices, TieredBeatsBlendedForLocalHeavyCustomers) {
  // A customer whose traffic is mostly cheap/local pays less under
  // tiered pricing — the incentive in paper §2.2.
  const std::vector<TierUsage> usage{{1, 90000000}, {3, 10000000}};
  const RatePlan plan{{{1, 4.0}, {3, 25.0}}};
  const auto tiered = tiered_invoice(usage, 8, plan);
  const auto blended = blended_invoice(usage, 8, 12.0);
  EXPECT_LT(tiered.total, blended.total);
}

TEST(PeeringEconomics, TieredPriceFloorFormula) {
  // (M + 1) * c_ISP + A from paper §2.2.2.
  PeeringEconomics econ;
  econ.blended_rate = 10.0;
  econ.isp_unit_cost = 2.0;
  econ.isp_margin = 0.3;
  econ.accounting_overhead = 0.5;
  EXPECT_NEAR(tiered_price_floor(econ), 1.3 * 2.0 + 0.5, 1e-12);
}

TEST(PeeringEconomics, CustomerPeelsOffWhenDirectIsCheaper) {
  PeeringEconomics econ;
  econ.blended_rate = 10.0;
  econ.isp_unit_cost = 2.0;
  EXPECT_TRUE(customer_peels_off(9.99, econ));
  EXPECT_FALSE(customer_peels_off(10.0, econ));
  EXPECT_FALSE(customer_peels_off(15.0, econ));
}

TEST(PeeringEconomics, MarketFailureWindow) {
  // Failure iff floor < c_direct < R: the customer builds a link that
  // costs society more than a tiered price would have.
  PeeringEconomics econ;
  econ.blended_rate = 10.0;
  econ.isp_unit_cost = 2.0;
  econ.isp_margin = 0.3;
  econ.accounting_overhead = 0.4;  // floor = 3.0
  EXPECT_FALSE(market_failure(2.5, econ));   // direct genuinely cheaper
  EXPECT_TRUE(market_failure(5.0, econ));    // wasteful bypass
  EXPECT_TRUE(market_failure(9.9, econ));
  EXPECT_FALSE(market_failure(11.0, econ));  // no bypass at all
}

TEST(PeeringEconomics, TieredPricingClosesTheFailureWindow) {
  // Once the ISP offers the floor price as a tier, bypass happens only
  // when the direct link truly beats ISP cost + margin — no waste.
  PeeringEconomics econ;
  econ.blended_rate = 10.0;
  econ.isp_unit_cost = 2.0;
  econ.isp_margin = 0.3;
  econ.accounting_overhead = 0.4;
  const double tier_price = tiered_price_floor(econ);
  // Any customer with c_direct above the tier price now stays.
  for (const double c_direct : {3.1, 5.0, 9.9}) {
    EXPECT_GT(c_direct, tier_price - 1e-9);
    EXPECT_TRUE(market_failure(c_direct, econ));  // failure under blended...
    EXPECT_FALSE(c_direct < tier_price);          // ...gone under tiered
  }
}

TEST(PeeringEconomics, Validates) {
  PeeringEconomics bad;
  EXPECT_THROW(tiered_price_floor(bad), std::invalid_argument);
  PeeringEconomics econ;
  econ.blended_rate = 10.0;
  econ.isp_unit_cost = 2.0;
  EXPECT_THROW(customer_peels_off(0.0, econ), std::invalid_argument);
  econ.isp_margin = -0.1;
  EXPECT_THROW(tiered_price_floor(econ), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::accounting
