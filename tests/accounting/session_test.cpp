#include "accounting/session.hpp"

#include <gtest/gtest.h>

#include "pricing/counterfactual.hpp"
#include "workload/generators.hpp"

namespace manytiers::accounting {
namespace {

Route make_route(const char* cidr, std::uint16_t tier) {
  Route r;
  r.prefix = geo::parse_prefix(cidr);
  r.tag = TierTag{65000, tier};
  return r;
}

TEST(Rib, WithdrawRemovesExactPrefixOnly) {
  Rib rib;
  rib.add(make_route("100.0.0.0/8", 1));
  rib.add(make_route("100.5.0.0/16", 2));
  EXPECT_TRUE(rib.withdraw(geo::parse_prefix("100.5.0.0/16")));
  EXPECT_EQ(rib.size(), 1u);
  // The /8 still covers the withdrawn space.
  EXPECT_EQ(rib.tier_of(geo::parse_ipv4("100.5.1.1")), 1);
  // Withdrawing again is a no-op.
  EXPECT_FALSE(rib.withdraw(geo::parse_prefix("100.5.0.0/16")));
  EXPECT_FALSE(rib.withdraw(geo::parse_prefix("99.0.0.0/8")));
}

TEST(Rib, ClearDropsEverything) {
  Rib rib;
  rib.add(make_route("100.0.0.0/8", 1));
  rib.add(make_route("0.0.0.0/0", 3));
  rib.clear();
  EXPECT_EQ(rib.size(), 0u);
  EXPECT_EQ(rib.lookup(geo::parse_ipv4("100.0.0.1")), nullptr);
}

TEST(Rib, RoutesSnapshotIsOrdered) {
  Rib rib;
  rib.add(make_route("110.0.0.0/8", 2));
  rib.add(make_route("100.0.0.0/8", 1));
  const auto routes = rib.routes();
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_LT(routes[0].prefix.address, routes[1].prefix.address);
}

TEST(Rib, LookupSurvivesManyInsertionsAndWithdrawals) {
  // Pointer stability check: interleave adds and withdraws, then verify
  // lookups against route contents.
  Rib rib;
  for (int i = 0; i < 50; ++i) {
    Route r;
    r.prefix = geo::Prefix{geo::IpV4(100 + i) << 24, 8};
    r.tag = TierTag{65000, std::uint16_t(i % 4)};
    r.description = "slot " + std::to_string(i);
    rib.add(r);
  }
  for (int i = 0; i < 50; i += 2) {
    EXPECT_TRUE(rib.withdraw(geo::Prefix{geo::IpV4(100 + i) << 24, 8}));
  }
  EXPECT_EQ(rib.size(), 25u);
  for (int i = 0; i < 50; ++i) {
    const Route* r = rib.lookup((geo::IpV4(100 + i) << 24) | 0x010101);
    if (i % 2 == 0) {
      EXPECT_EQ(r, nullptr) << i;
    } else {
      ASSERT_NE(r, nullptr) << i;
      EXPECT_EQ(r->description, "slot " + std::to_string(i));
    }
  }
}

TEST(BgpSession, RejectsUpdatesWhenDown) {
  BgpSession session("upstream");
  UpdateMessage update;
  update.announce.push_back(make_route("100.0.0.0/8", 1));
  EXPECT_FALSE(session.established());
  EXPECT_THROW(session.receive(update), std::logic_error);
}

TEST(BgpSession, AppliesAnnouncementsAndWithdrawals) {
  BgpSession session("upstream");
  session.establish();
  UpdateMessage first;
  first.announce.push_back(make_route("100.0.0.0/8", 1));
  first.announce.push_back(make_route("110.0.0.0/8", 2));
  session.receive(first);
  EXPECT_EQ(session.rib().size(), 2u);
  UpdateMessage second;
  second.withdraw.push_back(geo::parse_prefix("110.0.0.0/8"));
  session.receive(second);
  EXPECT_EQ(session.rib().size(), 1u);
  EXPECT_EQ(session.updates_received(), 2u);
  EXPECT_EQ(session.routes_withdrawn(), 1u);
}

TEST(BgpSession, WithdrawBeforeAnnounceWithinOneUpdate) {
  BgpSession session("upstream");
  session.establish();
  UpdateMessage first;
  first.announce.push_back(make_route("100.0.0.0/8", 1));
  session.receive(first);
  // Re-announce the same prefix in a different tier while withdrawing it:
  // the announcement must win.
  UpdateMessage flip;
  flip.withdraw.push_back(geo::parse_prefix("100.0.0.0/8"));
  flip.announce.push_back(make_route("100.0.0.0/8", 3));
  session.receive(flip);
  EXPECT_EQ(session.rib().tier_of(geo::parse_ipv4("100.1.1.1")), 3);
}

TEST(BgpSession, ResetFlapsClearLearnedRoutes) {
  BgpSession session("upstream");
  session.establish();
  UpdateMessage update;
  update.announce.push_back(make_route("100.0.0.0/8", 1));
  session.receive(update);
  session.reset();
  EXPECT_FALSE(session.established());
  EXPECT_EQ(session.rib().size(), 0u);
  // Re-establish and re-learn.
  session.establish();
  session.receive(update);
  EXPECT_EQ(session.rib().size(), 1u);
}

TEST(AnnouncementsForTiers, RollsAPricedBundlingIntoUpdates) {
  // Price a real market into 3 tiers and announce one /32 per flow.
  const auto flows = workload::generate_eu_isp({.seed = 4, .n_flows = 50});
  const auto cost = cost::make_linear_cost(0.2);
  const auto market =
      pricing::Market::calibrate(flows, pricing::DemandSpec{}, *cost, 20.0);
  const auto res =
      pricing::run_strategy(market, pricing::Strategy::ProfitWeighted, 3);
  std::vector<geo::Prefix> prefixes;
  for (std::size_t i = 0; i < market.size(); ++i) {
    prefixes.push_back(geo::Prefix{market.flows()[i].dst_ip, 32});
  }
  const auto updates =
      announcements_for_tiers(res.pricing, prefixes, 65000, 20);
  // 50 routes at 20 per update -> 3 messages.
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[0].announce.size(), 20u);
  EXPECT_EQ(updates[2].announce.size(), 10u);

  BgpSession session("customer");
  session.establish();
  for (const auto& u : updates) session.receive(u);
  EXPECT_EQ(session.rib().size(), 50u);
  // Every flow's destination resolves to its bundle's tier.
  const auto lookup = bundling::bundle_of_flow(res.pricing.bundles,
                                               market.size());
  for (std::size_t i = 0; i < market.size(); ++i) {
    EXPECT_EQ(session.rib().tier_of(market.flows()[i].dst_ip),
              std::uint16_t(lookup[i]));
  }
}

TEST(AnnouncementsForTiers, Validates) {
  pricing::PricedBundling pricing;
  pricing.bundles = {{0}};
  pricing.flow_prices = {10.0};
  const std::vector<geo::Prefix> none;
  EXPECT_THROW(announcements_for_tiers(pricing, none, 65000),
               std::invalid_argument);
  const std::vector<geo::Prefix> one{geo::parse_prefix("100.0.0.0/8")};
  EXPECT_THROW(announcements_for_tiers(pricing, one, 65000, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::accounting
