#include "accounting/bgp_codec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace manytiers::accounting {
namespace {

Route make_route(const char* cidr, std::uint16_t tier,
                 std::uint16_t asn = 65000) {
  Route r;
  r.prefix = geo::parse_prefix(cidr);
  r.tag = TierTag{asn, tier};
  return r;
}

TEST(BgpCodec, HeaderGoldenBytes) {
  UpdateMessage update;
  update.announce.push_back(make_route("100.0.0.0/8", 1));
  const auto bytes = encode_update(update, {});
  ASSERT_GE(bytes.size(), kBgpHeaderBytes);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(bytes[i], 0xff);
  // Length is big-endian and equals the buffer size.
  EXPECT_EQ((std::size_t(bytes[16]) << 8) | bytes[17], bytes.size());
  EXPECT_EQ(bytes[18], kBgpTypeUpdate);
}

TEST(BgpCodec, PrefixesUseMinimalOctets) {
  // A /8 NLRI takes 1 length byte + 1 address octet.
  UpdateMessage a, b;
  a.announce.push_back(make_route("100.0.0.0/8", 1));
  b.announce.push_back(make_route("100.1.2.0/24", 1));
  const auto bytes_a = encode_update(a, {});
  const auto bytes_b = encode_update(b, {});
  EXPECT_EQ(bytes_b.size(), bytes_a.size() + 2);  // two more address octets
}

TEST(BgpCodec, RoundTripsAnnouncementsWithTierTags) {
  UpdateMessage update;
  update.announce.push_back(make_route("100.0.0.0/8", 3, 64512));
  update.announce.push_back(make_route("100.64.0.0/10", 3, 64512));
  update.announce.push_back(make_route("1.2.3.4/32", 3, 64512));
  BgpEncodeOptions opts;
  opts.local_asn = 64512;
  const auto decoded = decode_update(encode_update(update, opts));
  ASSERT_EQ(decoded.announce.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.announce[i].prefix.address,
              update.announce[i].prefix.address);
    EXPECT_EQ(decoded.announce[i].prefix.length,
              update.announce[i].prefix.length);
    EXPECT_EQ(decoded.announce[i].tag, update.announce[i].tag);
  }
}

TEST(BgpCodec, RoundTripsWithdrawals) {
  UpdateMessage update;
  update.withdraw.push_back(geo::parse_prefix("100.0.0.0/8"));
  update.withdraw.push_back(geo::parse_prefix("0.0.0.0/0"));
  const auto decoded = decode_update(encode_update(update, {}));
  ASSERT_EQ(decoded.withdraw.size(), 2u);
  EXPECT_EQ(decoded.withdraw[0].length, 8);
  EXPECT_EQ(decoded.withdraw[1].length, 0);
  EXPECT_TRUE(decoded.announce.empty());
}

TEST(BgpCodec, WithdrawOnlyMessageHasNoPathAttributes) {
  UpdateMessage update;
  update.withdraw.push_back(geo::parse_prefix("100.0.0.0/8"));
  const auto bytes = encode_update(update, {});
  // header(19) + wrl(2) + prefix(2) + tpal(2) = 25 bytes.
  EXPECT_EQ(bytes.size(), 25u);
}

TEST(BgpCodec, MixedTiersMustBeSplit) {
  UpdateMessage update;
  update.announce.push_back(make_route("100.0.0.0/8", 1));
  update.announce.push_back(make_route("110.0.0.0/8", 2));
  EXPECT_THROW(encode_update(update, {}), std::invalid_argument);
  const auto messages = encode_updates(update, {});
  ASSERT_EQ(messages.size(), 2u);
  const auto first = decode_update(messages[0]);
  const auto second = decode_update(messages[1]);
  EXPECT_EQ(first.announce.size(), 1u);
  EXPECT_EQ(second.announce.size(), 1u);
  EXPECT_NE(first.announce[0].tag.tier, second.announce[0].tag.tier);
}

TEST(BgpCodec, EncodeUpdatesPutsWithdrawalsOnFirstMessage) {
  UpdateMessage update;
  update.withdraw.push_back(geo::parse_prefix("9.0.0.0/8"));
  update.announce.push_back(make_route("100.0.0.0/8", 1));
  update.announce.push_back(make_route("110.0.0.0/8", 2));
  const auto messages = encode_updates(update, {});
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(decode_update(messages[0]).withdraw.size(), 1u);
  EXPECT_TRUE(decode_update(messages[1]).withdraw.empty());
}

TEST(BgpCodec, WithdrawOnlyThroughEncodeUpdates) {
  UpdateMessage update;
  update.withdraw.push_back(geo::parse_prefix("9.0.0.0/8"));
  const auto messages = encode_updates(update, {});
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(decode_update(messages[0]).withdraw.size(), 1u);
}

TEST(BgpCodec, DecodeRejectsMalformedInput) {
  UpdateMessage update;
  update.announce.push_back(make_route("100.0.0.0/8", 1));
  auto bytes = encode_update(update, {});
  // Truncated.
  EXPECT_THROW(decode_update(std::span(bytes).first(10)),
               std::invalid_argument);
  EXPECT_THROW(decode_update(std::span(bytes).first(bytes.size() - 1)),
               std::invalid_argument);
  // Bad marker.
  auto bad_marker = bytes;
  bad_marker[0] = 0x00;
  EXPECT_THROW(decode_update(bad_marker), std::invalid_argument);
  // Wrong type.
  auto keepalive = bytes;
  keepalive[18] = 4;
  EXPECT_THROW(decode_update(keepalive), std::invalid_argument);
  // Lying length.
  auto bad_len = bytes;
  bad_len[17] = std::uint8_t(bytes.size() + 5);
  EXPECT_THROW(decode_update(bad_len), std::invalid_argument);
  // Prefix length > 32 in the NLRI.
  auto bad_prefix = bytes;
  bad_prefix[bytes.size() - 2] = 64;
  EXPECT_THROW(decode_update(bad_prefix), std::invalid_argument);
}

TEST(BgpCodec, WireUpdatesDriveASession) {
  // Full §5.1 path: tier plan -> session updates -> BGP wire -> decode ->
  // customer session RIB.
  UpdateMessage update;
  update.announce.push_back(make_route("100.0.0.0/8", 1));
  update.announce.push_back(make_route("110.0.0.0/8", 2));
  update.announce.push_back(make_route("0.0.0.0/0", 3));
  BgpSession session("customer");
  session.establish();
  for (const auto& wire : encode_updates(update, {})) {
    session.receive(decode_update(wire));
  }
  EXPECT_EQ(session.rib().size(), 3u);
  EXPECT_EQ(session.rib().tier_of(geo::parse_ipv4("100.1.1.1")), 1);
  EXPECT_EQ(session.rib().tier_of(geo::parse_ipv4("110.1.1.1")), 2);
  EXPECT_EQ(session.rib().tier_of(geo::parse_ipv4("8.8.8.8")), 3);
}

TEST(BgpCodec, RejectsOversizedMessages) {
  UpdateMessage update;
  // ~1300 /32 routes at 5 bytes each exceed 4096 bytes.
  for (std::uint32_t i = 0; i < 1300; ++i) {
    Route r;
    r.prefix = geo::Prefix{(geo::IpV4(10) << 24) | i, 32};
    r.tag = TierTag{65000, 1};
    update.announce.push_back(r);
  }
  EXPECT_THROW(encode_update(update, {}), std::invalid_argument);
}

TEST(BgpCodec, FuzzRoundTripRandomUpdates) {
  util::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    UpdateMessage update;
    const auto n_withdraw = std::size_t(rng.uniform_int(0, 10));
    for (std::size_t i = 0; i < n_withdraw; ++i) {
      const int length = int(rng.uniform_int(0, 32));
      const geo::IpV4 mask =
          length == 0 ? 0 : ~geo::IpV4(0) << (32 - length);
      update.withdraw.push_back(
          geo::Prefix{geo::IpV4(rng.uniform_int(0, 0xffffffffLL)) & mask,
                      length});
    }
    const auto n_announce = std::size_t(rng.uniform_int(0, 40));
    const TierTag tag{std::uint16_t(rng.uniform_int(1, 0xffff)),
                      std::uint16_t(rng.uniform_int(0, 0xffff))};
    for (std::size_t i = 0; i < n_announce; ++i) {
      const int length = int(rng.uniform_int(1, 32));
      const geo::IpV4 mask = ~geo::IpV4(0) << (32 - length);
      Route r;
      r.prefix =
          geo::Prefix{geo::IpV4(rng.uniform_int(0, 0xffffffffLL)) & mask,
                      length};
      r.tag = tag;
      update.announce.push_back(r);
    }
    const auto decoded = decode_update(encode_update(update, {}));
    ASSERT_EQ(decoded.withdraw.size(), update.withdraw.size());
    ASSERT_EQ(decoded.announce.size(), update.announce.size());
    for (std::size_t i = 0; i < update.withdraw.size(); ++i) {
      EXPECT_EQ(decoded.withdraw[i].address, update.withdraw[i].address);
      EXPECT_EQ(decoded.withdraw[i].length, update.withdraw[i].length);
    }
    for (std::size_t i = 0; i < update.announce.size(); ++i) {
      EXPECT_EQ(decoded.announce[i].prefix.address,
                update.announce[i].prefix.address);
      EXPECT_EQ(decoded.announce[i].prefix.length,
                update.announce[i].prefix.length);
      EXPECT_EQ(decoded.announce[i].tag, update.announce[i].tag);
    }
  }
}

}  // namespace
}  // namespace manytiers::accounting
