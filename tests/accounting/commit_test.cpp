#include "accounting/commit.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace manytiers::accounting {
namespace {

// 1e6 bytes over 8 s = 1 Mbps; use 8-second intervals for round numbers.
constexpr std::uint32_t kInterval = 8;
constexpr std::uint64_t kMbpsBytes = 1000000;

TEST(BurstMeter, ValidatesInterval) {
  EXPECT_THROW(BurstMeter(0), std::invalid_argument);
}

TEST(BurstMeter, ThrowsWithoutSamples) {
  BurstMeter meter(kInterval);
  EXPECT_THROW(meter.billable_mbps(), std::logic_error);
  EXPECT_THROW(meter.mean_mbps(), std::logic_error);
}

TEST(BurstMeter, ConstantRate) {
  BurstMeter meter(kInterval);
  for (int i = 0; i < 10; ++i) meter.record_interval(5 * kMbpsBytes);
  EXPECT_DOUBLE_EQ(meter.billable_mbps(), 5.0);
  EXPECT_DOUBLE_EQ(meter.peak_mbps(), 5.0);
  EXPECT_DOUBLE_EQ(meter.mean_mbps(), 5.0);
}

TEST(BurstMeter, NinetyFifthPercentileShavesTheTop) {
  // 100 intervals at 1 Mbps and 4 bursts at 100 Mbps: the 95th
  // percentile ignores the bursts (they are < 5% of samples), the peak
  // does not. This is exactly why burstable billing exists.
  BurstMeter meter(kInterval);
  for (int i = 0; i < 100; ++i) meter.record_interval(kMbpsBytes);
  for (int i = 0; i < 4; ++i) meter.record_interval(100 * kMbpsBytes);
  EXPECT_NEAR(meter.billable_mbps(95.0), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(meter.peak_mbps(), 100.0);
  EXPECT_GT(meter.mean_mbps(), 1.0);
}

TEST(BurstMeter, PercentileMonotoneInQ) {
  BurstMeter meter(kInterval);
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    meter.record_interval(std::uint64_t(rng.uniform(0.5, 20.0) * kMbpsBytes));
  }
  double prev = 0.0;
  for (const double q : {5.0, 50.0, 95.0, 99.0, 100.0}) {
    const double rate = meter.billable_mbps(q);
    EXPECT_GE(rate, prev);
    prev = rate;
  }
}

CommitSchedule standard_schedule() {
  return CommitSchedule({{0.0, 20.0},      // walk-in
                         {100.0, 14.0},    // 100 Mbps commit
                         {1000.0, 8.0},    // 1 Gbps commit
                         {10000.0, 4.0}})  // 10 Gbps commit
      ;
}

TEST(CommitSchedule, ValidatesLadder) {
  EXPECT_THROW(CommitSchedule({}), std::invalid_argument);
  // First tier must be commit 0.
  EXPECT_THROW(CommitSchedule({{10.0, 5.0}}), std::invalid_argument);
  // Commits must increase.
  EXPECT_THROW(CommitSchedule({{0.0, 5.0}, {0.0, 4.0}}),
               std::invalid_argument);
  // Prices must decrease (it is a *discount* schedule).
  EXPECT_THROW(CommitSchedule({{0.0, 5.0}, {10.0, 6.0}}),
               std::invalid_argument);
  EXPECT_THROW(CommitSchedule({{0.0, 0.0}}), std::invalid_argument);
}

TEST(CommitSchedule, TierForPicksHighestAffordedRung) {
  const auto sched = standard_schedule();
  EXPECT_DOUBLE_EQ(sched.tier_for(0.0).price_per_mbps, 20.0);
  EXPECT_DOUBLE_EQ(sched.tier_for(99.0).price_per_mbps, 20.0);
  EXPECT_DOUBLE_EQ(sched.tier_for(100.0).price_per_mbps, 14.0);
  EXPECT_DOUBLE_EQ(sched.tier_for(5000.0).price_per_mbps, 8.0);
  EXPECT_DOUBLE_EQ(sched.tier_for(50000.0).price_per_mbps, 4.0);
  EXPECT_THROW(sched.tier_for(-1.0), std::invalid_argument);
}

TEST(CommitSchedule, BillPaysForMaxOfCommitAndUsage) {
  const auto sched = standard_schedule();
  // Under-commit: pay usage at the committed rate.
  EXPECT_DOUBLE_EQ(sched.monthly_bill(100.0, 400.0), 400.0 * 14.0);
  // Over-commit: pay the commit even if usage is lower.
  EXPECT_DOUBLE_EQ(sched.monthly_bill(1000.0, 400.0), 1000.0 * 8.0);
  EXPECT_THROW(sched.monthly_bill(0.0, -1.0), std::invalid_argument);
}

TEST(CommitSchedule, CommittingAboveUsageCanBeCheaper) {
  const auto sched = standard_schedule();
  // 700 Mbps of real usage: committing to 1 Gbps at $8 beats paying for
  // 700 at the 100-Mbps tier's $14.
  const double honest = sched.monthly_bill(700.0, 700.0);
  const double padded = sched.monthly_bill(1000.0, 700.0);
  EXPECT_LT(padded, honest);
  EXPECT_DOUBLE_EQ(sched.optimal_commit(700.0), 1000.0);
}

TEST(CommitSchedule, OptimalCommitIsHonestWhenDiscountsDontPay) {
  const auto sched = standard_schedule();
  // 50 Mbps: the 100-commit tier costs 100*14 = 1400 > 50*20 = 1000.
  EXPECT_DOUBLE_EQ(sched.optimal_commit(50.0), 50.0);
}

TEST(CommitSchedule, OptimalCommitNeverCostsMoreThanHonest) {
  const auto sched = standard_schedule();
  util::Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const double usage = rng.uniform(1.0, 20000.0);
    const double commit = sched.optimal_commit(usage);
    EXPECT_LE(sched.monthly_bill(commit, usage),
              sched.monthly_bill(usage, usage) + 1e-9)
        << "usage " << usage;
  }
}

TEST(CommitAndMeter, EndToEndMonthlyBill) {
  // Meter a bursty month, bill the 95th percentile against the optimal
  // commit.
  BurstMeter meter(kInterval);
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double mbps = rng.bernoulli(0.03) ? 900.0 : rng.uniform(80.0, 120.0);
    meter.record_interval(std::uint64_t(mbps * kMbpsBytes));
  }
  const double billable = meter.billable_mbps();
  EXPECT_GT(billable, 80.0);
  EXPECT_LT(billable, 900.0);  // bursts shaved by the 95th percentile
  const auto sched = standard_schedule();
  const double commit = sched.optimal_commit(billable);
  const double bill = sched.monthly_bill(commit, billable);
  EXPECT_GT(bill, 0.0);
  EXPECT_LE(bill, sched.monthly_bill(billable, billable));
}

}  // namespace
}  // namespace manytiers::accounting
