#include "cost/cost.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/stats.hpp"

namespace manytiers::cost {
namespace {

workload::FlowSet flows_with_distances(std::vector<double> distances) {
  workload::FlowSet fs("test");
  for (const double d : distances) {
    workload::Flow f;
    f.demand_mbps = 10.0;
    f.distance_miles = d;
    f.region = geo::classify_distance(d);
    fs.add(f);
  }
  return fs;
}

// --- Linear cost ---

TEST(LinearCost, MatchesPaperExample) {
  // Paper §3.3: distances {1, 10, 100}, theta = 0.1 -> base 10 ->
  // relative costs {11, 20, 110}.
  const auto model = make_linear_cost(0.1);
  const auto fs = flows_with_distances({1.0, 10.0, 100.0});
  const auto f = model->relative_costs(fs);
  EXPECT_DOUBLE_EQ(f[0], 11.0);
  EXPECT_DOUBLE_EQ(f[1], 20.0);
  EXPECT_DOUBLE_EQ(f[2], 110.0);
}

TEST(LinearCost, ZeroThetaIsPureDistance) {
  const auto model = make_linear_cost(0.0);
  const auto f = model->relative_costs(flows_with_distances({2.0, 8.0}));
  EXPECT_DOUBLE_EQ(f[0], 2.0);
  EXPECT_DOUBLE_EQ(f[1], 8.0);
}

TEST(LinearCost, HigherThetaReducesCostVariability) {
  // Raising the base cost lowers the CV of cost — the mechanism behind
  // the declining profits in paper Fig. 10.
  const auto fs = flows_with_distances({1.0, 5.0, 20.0, 100.0});
  double prev_cv = 1e9;
  for (const double theta : {0.0, 0.1, 0.2, 0.3, 1.0}) {
    const auto f = make_linear_cost(theta)->relative_costs(fs);
    const double cv = util::coefficient_of_variation(f);
    EXPECT_LT(cv, prev_cv);
    prev_cv = cv;
  }
}

TEST(LinearCost, PreservesDistanceOrder) {
  const auto f =
      make_linear_cost(0.2)->relative_costs(flows_with_distances({7.0, 3.0, 9.0}));
  EXPECT_GT(f[0], f[1]);
  EXPECT_GT(f[2], f[0]);
}

TEST(LinearCost, Validates) {
  EXPECT_THROW(make_linear_cost(-0.1), std::invalid_argument);
  const auto model = make_linear_cost(0.0);
  EXPECT_THROW(model->relative_costs(workload::FlowSet("empty")),
               std::invalid_argument);
  EXPECT_THROW(model->relative_costs(flows_with_distances({0.0, 1.0})),
               std::domain_error);
}

TEST(LinearCost, NoExpansionAndSingleClass) {
  const auto model = make_linear_cost(0.2);
  const auto fs = flows_with_distances({1.0, 2.0});
  EXPECT_EQ(model->expand(fs).size(), 2u);
  EXPECT_EQ(model->cost_classes(), 0);
  const auto classes = model->class_of_flows(fs);
  EXPECT_EQ(classes, (std::vector<std::size_t>{0, 0}));
}

// --- Concave cost ---

TEST(ConcaveCost, IsConcaveInDistance) {
  // Adding 10 miles to a short path raises cost more than adding 10
  // miles to a long one (diminishing marginal cost of distance).
  const auto model = make_concave_cost(0.0);
  // Distances chosen to stay above the relative-cost floor clamp.
  const auto fs = flows_with_distances({200.0, 300.0, 900.0, 1000.0});
  const auto f = model->relative_costs(fs);
  EXPECT_GT(f[1] - f[0], f[3] - f[2]);
}

TEST(ConcaveCost, MaxDistanceCostsC0) {
  // At the normalization point x = 1, cost equals the fit's constant c.
  const auto model = make_concave_cost(0.0);
  const auto f = model->relative_costs(flows_with_distances({100.0, 1000.0}));
  EXPECT_NEAR(f[1], 1.0, 1e-12);
}

TEST(ConcaveCost, FloorPreventsNegativeCosts) {
  const auto model = make_concave_cost(0.0);
  // 1e-6 relative distance would give a negative log value without the
  // clamp.
  const auto f =
      model->relative_costs(flows_with_distances({0.001, 1000.0}));
  EXPECT_GT(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[0], 0.05);
}

TEST(ConcaveCost, HasLowerCvThanLinearAtSameTheta) {
  // The paper attributes Fig. 11's faster profit decline to the concave
  // model's lower CV of cost.
  const auto fs = flows_with_distances({1.0, 5.0, 50.0, 500.0, 2000.0});
  const auto lin = make_linear_cost(0.2)->relative_costs(fs);
  const auto con = make_concave_cost(0.2)->relative_costs(fs);
  EXPECT_LT(util::coefficient_of_variation(con),
            util::coefficient_of_variation(lin));
}

TEST(ConcaveCost, CustomParameters) {
  ConcaveParams params;
  params.a = 0.43;
  params.b = 9.43;
  params.c = 0.99;
  const auto model = make_concave_cost(0.0, params);
  const auto f = model->relative_costs(flows_with_distances({10.0, 100.0}));
  // x = 0.1: y = 0.43 log_9.43(0.1) + 0.99.
  EXPECT_NEAR(f[0], 0.43 * std::log(0.1) / std::log(9.43) + 0.99, 1e-9);
  EXPECT_NEAR(f[1], 0.99, 1e-12);
}

TEST(ConcaveCost, Validates) {
  EXPECT_THROW(make_concave_cost(-0.1), std::invalid_argument);
  ConcaveParams bad;
  bad.b = 1.0;
  EXPECT_THROW(make_concave_cost(0.0, bad), std::invalid_argument);
  ConcaveParams bad2;
  bad2.floor = 0.0;
  EXPECT_THROW(make_concave_cost(0.0, bad2), std::invalid_argument);
  const auto model = make_concave_cost(0.0);
  EXPECT_THROW(model->relative_costs(flows_with_distances({0.0, 0.0})),
               std::domain_error);
}

// --- Regional cost ---

TEST(RegionalCost, ThetaZeroErasesRegionalDifferences) {
  const auto model = make_regional_cost(0.0);
  const auto fs = flows_with_distances({5.0, 50.0, 500.0});
  const auto f = model->relative_costs(fs);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  EXPECT_DOUBLE_EQ(f[2], 1.0);
}

TEST(RegionalCost, ThetaOneIsLinearRatios) {
  const auto model = make_regional_cost(1.0);
  const auto fs = flows_with_distances({5.0, 50.0, 500.0});
  const auto f = model->relative_costs(fs);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 2.0);
  EXPECT_DOUBLE_EQ(f[2], 3.0);
}

TEST(RegionalCost, LargeThetaSeparatesByMagnitudes) {
  const auto model = make_regional_cost(2.0);
  const auto fs = flows_with_distances({5.0, 50.0, 500.0});
  const auto f = model->relative_costs(fs);
  EXPECT_DOUBLE_EQ(f[1], 4.0);
  EXPECT_DOUBLE_EQ(f[2], 9.0);
}

TEST(RegionalCost, ExposesThreeClasses) {
  const auto model = make_regional_cost(1.0);
  EXPECT_EQ(model->cost_classes(), 3);
  const auto fs = flows_with_distances({5.0, 50.0, 500.0, 5.0});
  const auto classes = model->class_of_flows(fs);
  EXPECT_EQ(classes[0], classes[3]);
  EXPECT_NE(classes[0], classes[1]);
  EXPECT_NE(classes[1], classes[2]);
}

TEST(RegionalCost, Validates) {
  EXPECT_THROW(make_regional_cost(-1.0), std::invalid_argument);
  EXPECT_THROW(make_regional_cost(1.0)->relative_costs(workload::FlowSet()),
               std::invalid_argument);
}

// --- Destination-type cost ---

TEST(DestTypeCost, SplitsEveryFlowInTwo) {
  const auto model = make_dest_type_cost(0.1);
  const auto fs = flows_with_distances({10.0, 20.0});
  const auto expanded = model->expand(fs);
  ASSERT_EQ(expanded.size(), 4u);
  // Demand is conserved.
  EXPECT_NEAR(expanded.total_demand_mbps(), fs.total_demand_mbps(), 1e-9);
  // theta fraction is on-net.
  EXPECT_EQ(expanded[0].dest_type, workload::DestType::OnNet);
  EXPECT_NEAR(expanded[0].demand_mbps, 1.0, 1e-12);
  EXPECT_EQ(expanded[1].dest_type, workload::DestType::OffNet);
  EXPECT_NEAR(expanded[1].demand_mbps, 9.0, 1e-12);
}

TEST(DestTypeCost, OffNetCostsTwiceOnNet) {
  const auto model = make_dest_type_cost(0.5);
  const auto expanded = model->expand(flows_with_distances({10.0, 40.0}));
  const auto f = model->relative_costs(expanded);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_NEAR(f[1] / f[0], 2.0, 1e-12);
  EXPECT_NEAR(f[3] / f[2], 2.0, 1e-12);
}

TEST(DestTypeCost, CostIsClassBasedNotDistanceBased) {
  // Paper §3.3: the on/off-net model has exactly two cost levels; the
  // customer-to-customer revenue offset, not distance, drives the gap.
  const auto model = make_dest_type_cost(0.5);
  const auto expanded = model->expand(flows_with_distances({10.0, 40.0}));
  const auto f = model->relative_costs(expanded);
  EXPECT_DOUBLE_EQ(f[0], f[2]);  // on-net near == on-net far
  EXPECT_DOUBLE_EQ(f[1], f[3]);  // off-net near == off-net far
}

TEST(DestTypeCost, ExposesTwoClasses) {
  const auto model = make_dest_type_cost(0.15);
  EXPECT_EQ(model->cost_classes(), 2);
  const auto expanded = model->expand(flows_with_distances({10.0}));
  const auto classes = model->class_of_flows(expanded);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_NE(classes[0], classes[1]);
}

TEST(DestTypeCost, Validates) {
  EXPECT_THROW(make_dest_type_cost(0.0), std::invalid_argument);
  EXPECT_THROW(make_dest_type_cost(1.0), std::invalid_argument);
  const auto model = make_dest_type_cost(0.1);
  EXPECT_THROW(model->expand(workload::FlowSet()), std::invalid_argument);
  EXPECT_THROW(model->relative_costs(workload::FlowSet()),
               std::invalid_argument);
}

// Property: every model emits strictly positive costs on realistic inputs.
class CostPositivityProperty : public ::testing::TestWithParam<double> {};

TEST_P(CostPositivityProperty, AllModelsProducePositiveCosts) {
  const double theta = GetParam();
  const auto fs = flows_with_distances({0.5, 3.0, 25.0, 120.0, 4000.0});
  std::vector<std::unique_ptr<CostModel>> models;
  models.push_back(make_linear_cost(theta));
  models.push_back(make_concave_cost(theta));
  models.push_back(make_regional_cost(theta));
  if (theta > 0.0 && theta < 1.0) models.push_back(make_dest_type_cost(theta));
  for (const auto& model : models) {
    const auto expanded = model->expand(fs);
    const auto f = model->relative_costs(expanded);
    ASSERT_EQ(f.size(), expanded.size()) << model->name();
    for (const double fi : f) EXPECT_GT(fi, 0.0) << model->name();
  }
}

INSTANTIATE_TEST_SUITE_P(ThetaGrid, CostPositivityProperty,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.9, 1.2));

}  // namespace
}  // namespace manytiers::cost
