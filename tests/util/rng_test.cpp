#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stats.hpp"

namespace manytiers::util {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 4.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.5);
  }
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= x == 0;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(9);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.exponential(0.5);
  EXPECT_NEAR(mean(xs), 2.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(9);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(heads) / 10000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliValidatesP) {
  Rng rng(13);
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(Rng, ParetoValidatesParameters) {
  Rng rng(17);
  EXPECT_THROW(rng.pareto(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, ZipfStaysInRangeAndFavorsLowRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto k = rng.zipf(10, 1.0);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 10);
    ++counts[std::size_t(k - 1)];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(23);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 25000; ++i) ++counts[std::size_t(rng.zipf(5, 0.0) - 1)];
  for (const int c : counts) EXPECT_NEAR(double(c), 5000.0, 300.0);
}

TEST(Rng, ZipfValidatesArguments) {
  Rng rng(23);
  EXPECT_THROW(rng.zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.zipf(5, -1.0), std::invalid_argument);
}

TEST(Rng, IndexCoversAllSlots) {
  Rng rng(29);
  std::vector<bool> seen(7, false);
  for (int i = 0; i < 1000; ++i) seen[rng.index(7)] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(29);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(31);
  Rng childA = parent.fork(1);
  Rng childB = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA.uniform(0.0, 1.0) == childB.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(LognormalParams, RoundTripsMeanAndCv) {
  const auto p = lognormal_from_mean_cv(5.0, 1.5);
  // mean = exp(mu + sigma^2/2), cv^2 = exp(sigma^2) - 1.
  EXPECT_NEAR(std::exp(p.mu + p.sigma * p.sigma / 2.0), 5.0, 1e-12);
  EXPECT_NEAR(std::sqrt(std::exp(p.sigma * p.sigma) - 1.0), 1.5, 1e-12);
}

TEST(LognormalParams, ValidatesInputs) {
  EXPECT_THROW(lognormal_from_mean_cv(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(lognormal_from_mean_cv(1.0, 0.0), std::invalid_argument);
}

TEST(SampleHeavyTailed, HitsSumExactlyAndCvClosely) {
  Rng rng(37);
  const auto xs = sample_heavy_tailed(rng, 500, 1000.0, 2.0);
  EXPECT_EQ(xs.size(), 500u);
  EXPECT_NEAR(std::accumulate(xs.begin(), xs.end(), 0.0), 1000.0, 1e-6);
  EXPECT_NEAR(coefficient_of_variation(xs), 2.0, 0.5);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(SampleHeavyTailed, ValidatesArguments) {
  Rng rng(37);
  EXPECT_THROW(sample_heavy_tailed(rng, 0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_heavy_tailed(rng, 10, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_heavy_tailed(rng, 10, 1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::util
