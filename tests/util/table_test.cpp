#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace manytiers::util {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5, 3), "1.5");
  EXPECT_EQ(format_double(2.0, 3), "2.0");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.23456, 4), "1.2346");
}

TEST(TextTable, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), std::invalid_argument);
}

TEST(TextTable, CountsRowsAndColumns) {
  TextTable t({"a", "b", "c"});
  t.add_row({1.0, 2.0, 3.0});
  t.add_row({4.0, 5.0, 6.0});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 3u);
}

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({std::string("x"), std::string("1")});
  t.add_row({std::string("longer"), std::string("22")});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, LabeledNumericRow) {
  TextTable t({"strategy", "b1", "b2"});
  t.add_row("Optimal", {0.5, 0.9}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("Optimal"), std::string::npos);
  EXPECT_NE(os.str().find("0.9"), std::string::npos);
}

TEST(TextTable, CsvEscapesCommas) {
  TextTable t({"name", "value"});
  t.add_row({std::string("a,b"), std::string("1")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
}

TEST(TextTable, CsvHasHeaderAndRows) {
  TextTable t({"h1", "h2"});
  t.add_row({1.0, 2.0});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\n1.0,2.0\n");
}

}  // namespace
}  // namespace manytiers::util
