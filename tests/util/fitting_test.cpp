#include "util/fitting.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace manytiers::util {
namespace {

TEST(LinearLeastSquares, RecoversExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.0 * x + 1.0);
  const auto fit = linear_least_squares(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-12);
}

TEST(LinearLeastSquares, HandlesNoisyData) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> ys{1.1, 1.9, 3.2, 3.8, 5.1};
  const auto fit = linear_least_squares(xs, ys);
  EXPECT_NEAR(fit.slope, 1.0, 0.1);
  EXPECT_GT(fit.r2, 0.98);
}

TEST(LinearLeastSquares, ConstantXGivesZeroSlope) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const auto fit = linear_least_squares(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(LinearLeastSquares, ValidatesInput) {
  EXPECT_THROW(
      linear_least_squares(std::vector<double>{}, std::vector<double>{}),
      std::invalid_argument);
  EXPECT_THROW(linear_least_squares(std::vector<double>{1.0},
                                    std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Rmse, ZeroForPerfectPrediction) {
  const std::vector<double> a{1.0, 2.0};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> pred{0.0, 0.0};
  const std::vector<double> act{3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(pred, act), std::sqrt(12.5));
}

TEST(RSquared, PerfectAndMeanPredictors) {
  const std::vector<double> act{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(act, act), 1.0);
  const std::vector<double> mean_pred{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(mean_pred, act), 0.0);
}

TEST(ConcaveFit, RecoversGeneratingCurve) {
  // y = a log_b(x) + c with the paper's pooled constants a=0.5, b=6, c=1.
  const double a = 0.5, b = 6.0, c = 1.0;
  std::vector<double> xs, ys;
  for (double x = 0.01; x <= 1.0; x += 0.01) {
    xs.push_back(x);
    ys.push_back(a * std::log(x) / std::log(b) + c);
  }
  const auto fit = fit_concave_log(xs, ys, b);
  EXPECT_NEAR(fit.a, a, 1e-9);
  EXPECT_NEAR(fit.b, b, 1e-12);
  EXPECT_NEAR(fit.c, c, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(ConcaveFit, BaseIsNotIdentifiableButCurveIs) {
  // Fitting the same data with a different base changes (a, b) but not
  // the curve: k = a / ln(b) and c are invariant.
  std::vector<double> xs, ys;
  for (double x = 0.05; x <= 1.0; x += 0.05) {
    xs.push_back(x);
    ys.push_back(0.43 * std::log(x) / std::log(9.43) + 0.99);
  }
  const auto fit6 = fit_concave_log(xs, ys, 6.0);
  const auto fit9 = fit_concave_log(xs, ys, 9.43);
  EXPECT_NEAR(fit6.k, fit9.k, 1e-12);
  EXPECT_NEAR(fit6.c, fit9.c, 1e-12);
  EXPECT_NEAR(fit9.a, 0.43, 1e-9);
  for (double x = 0.1; x <= 1.0; x += 0.1) {
    EXPECT_NEAR(fit6.evaluate(x), fit9.evaluate(x), 1e-12);
  }
}

TEST(ConcaveFit, WithBaseReexpressesCurve) {
  std::vector<double> xs, ys;
  for (double x = 0.1; x <= 1.0; x += 0.1) {
    xs.push_back(x);
    ys.push_back(0.25 * std::log(x) + 1.0);
  }
  const auto fit = fit_concave_log(xs, ys, 6.0);
  const auto rebased = fit.with_base(2.0);
  EXPECT_DOUBLE_EQ(rebased.b, 2.0);
  EXPECT_NEAR(rebased.a, fit.k * std::log(2.0), 1e-12);
  EXPECT_NEAR(rebased.evaluate(0.5), fit.evaluate(0.5), 1e-12);
}

TEST(ConcaveFit, ValidatesInput) {
  const std::vector<double> xs{0.5, 1.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(fit_concave_log(xs, ys, 1.0), std::invalid_argument);
  EXPECT_THROW(
      fit_concave_log(std::vector<double>{-1.0, 1.0}, ys, 6.0),
      std::invalid_argument);
  EXPECT_THROW(fit_concave_log(std::vector<double>{}, std::vector<double>{},
                               6.0),
               std::invalid_argument);
}

TEST(ConcaveFit, EvaluateRejectsNonPositiveX) {
  ConcaveFit fit;
  fit.k = 1.0;
  fit.c = 0.0;
  EXPECT_THROW(fit.evaluate(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::util
