#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace manytiers::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 8u, 64u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SlotPerIndexReductionIsThreadCountInvariant) {
  // The sweep engine's pattern: write results into per-index slots, then
  // reduce serially. The outcome must not depend on the thread count.
  const std::size_t n = 257;
  std::vector<double> serial(n), parallel(n);
  const auto body = [](std::size_t i) {
    double x = double(i) + 1.0;
    for (int k = 0; k < 8; ++k) x = x * 1.000001 + double(k);
    return x;
  };
  parallel_for(n, [&](std::size_t i) { serial[i] = body(i); }, 1);
  parallel_for(n, [&](std::size_t i) { parallel[i] = body(i); }, 5);
  EXPECT_EQ(serial, parallel);  // exact equality, bit for bit
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          32,
          [](std::size_t i) {
            if (i == 17) throw std::runtime_error("worker failure");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkStillCovers) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DefaultThreadCount, IsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace manytiers::util
