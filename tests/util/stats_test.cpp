#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace manytiers::util {
namespace {

const std::vector<double> kSimple{1.0, 2.0, 3.0, 4.0};

TEST(Stats, Sum) {
  EXPECT_DOUBLE_EQ(sum(kSimple), 10.0);
  EXPECT_DOUBLE_EQ(sum(std::vector<double>{}), 0.0);
}

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(mean(kSimple), 2.5); }

TEST(Stats, MeanRejectsEmpty) {
  EXPECT_THROW(mean(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, PopulationVariance) {
  // Population variance of {1,2,3,4} is 1.25.
  EXPECT_DOUBLE_EQ(variance(kSimple), 1.25);
  EXPECT_DOUBLE_EQ(stddev(kSimple), std::sqrt(1.25));
}

TEST(Stats, VarianceOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation(kSimple), std::sqrt(1.25) / 2.5);
}

TEST(Stats, CvRejectsZeroMean) {
  EXPECT_THROW(coefficient_of_variation(std::vector<double>{-1.0, 1.0}),
               std::invalid_argument);
}

TEST(Stats, WeightedMean) {
  const std::vector<double> xs{1.0, 10.0};
  const std::vector<double> ws{3.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), (3.0 + 10.0) / 4.0);
}

TEST(Stats, WeightedMeanEqualWeightsIsMean) {
  const std::vector<double> ws{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(weighted_mean(kSimple, ws), mean(kSimple));
}

TEST(Stats, WeightedMeanValidates) {
  EXPECT_THROW(weighted_mean(kSimple, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      weighted_mean(std::vector<double>{1.0}, std::vector<double>{-1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      weighted_mean(std::vector<double>{1.0}, std::vector<double>{0.0}),
      std::invalid_argument);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_value(kSimple), 1.0);
  EXPECT_DOUBLE_EQ(max_value(kSimple), 4.0);
  EXPECT_THROW(min_value(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(max_value(std::vector<double>{}), std::invalid_argument);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  EXPECT_DOUBLE_EQ(percentile(kSimple, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(kSimple, 50.0), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, PercentileIgnoresInputOrder) {
  const std::vector<double> shuffled{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 50.0), 2.5);
}

TEST(Stats, PercentileValidates) {
  EXPECT_THROW(percentile(kSimple, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(kSimple, 101.0), std::invalid_argument);
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), std::invalid_argument);
}

TEST(Stats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 99.0), 7.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  RunningStats rs;
  for (const double x : kSimple) rs.add(x);
  EXPECT_EQ(rs.count(), 4u);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(kSimple));
  EXPECT_NEAR(rs.variance(), variance(kSimple), 1e-12);
  EXPECT_NEAR(rs.cv(), coefficient_of_variation(kSimple), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

TEST(RunningStats, ThrowsBeforeAnySample) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), std::logic_error);
  EXPECT_THROW(rs.variance(), std::logic_error);
  EXPECT_THROW(rs.min(), std::logic_error);
  EXPECT_THROW(rs.max(), std::logic_error);
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace manytiers::util
