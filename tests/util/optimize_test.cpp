#include "util/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace manytiers::util {
namespace {

TEST(MaximizeScalar, FindsParabolaPeak) {
  const auto opt = maximize_scalar(
      [](double x) { return -(x - 2.0) * (x - 2.0) + 5.0; }, 0.0, 10.0);
  EXPECT_NEAR(opt.x, 2.0, 1e-7);
  EXPECT_NEAR(opt.value, 5.0, 1e-10);
}

TEST(MaximizeScalar, HandlesBoundaryMaximum) {
  const auto opt = maximize_scalar([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(opt.x, 1.0, 1e-6);
}

TEST(MaximizeScalar, RejectsEmptyInterval) {
  EXPECT_THROW(maximize_scalar([](double x) { return x; }, 1.0, 1.0),
               std::invalid_argument);
}

TEST(MaximizeScalar, MatchesClosedFormProfitPeak) {
  // CED single-flow profit (v/p)^a (p - c): peak at p = a c / (a - 1).
  const double a = 2.0, c = 1.0;
  const auto opt = maximize_scalar(
      [&](double p) { return std::pow(1.0 / p, a) * (p - c); }, 1.01, 50.0);
  EXPECT_NEAR(opt.x, a * c / (a - 1.0), 1e-5);
}

TEST(FindRoot, SolvesLinearEquation) {
  const double r = find_root([](double x) { return 2.0 * x - 3.0; }, 0.0, 5.0);
  EXPECT_NEAR(r, 1.5, 1e-10);
}

TEST(FindRoot, SolvesTranscendentalEquation) {
  const double r =
      find_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332, 1e-8);
}

TEST(FindRoot, ReturnsExactEndpointRoot) {
  EXPECT_DOUBLE_EQ(find_root([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(find_root([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(FindRoot, RejectsNonBracketingInterval) {
  EXPECT_THROW(find_root([](double x) { return x + 10.0; }, 0.0, 1.0),
               std::invalid_argument);
}

TEST(FixedPoint, ConvergesToSqrt) {
  // x = (x + 2/x)/2 converges to sqrt(2).
  const auto res =
      fixed_point([](double x) { return (x + 2.0 / x) / 2.0; }, 1.0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-9);
}

TEST(FixedPoint, ReportsNonConvergence) {
  const auto res = fixed_point([](double x) { return -2.0 * x + 1.0; }, 5.0,
                               1e-12, 50, 1.0);
  EXPECT_FALSE(res.converged);
}

TEST(FixedPoint, ValidatesDamping) {
  EXPECT_THROW(fixed_point([](double x) { return x; }, 0.0, 1e-9, 10, 0.0),
               std::invalid_argument);
  EXPECT_THROW(fixed_point([](double x) { return x; }, 0.0, 1e-9, 10, 1.5),
               std::invalid_argument);
}

TEST(GradientAscent, MaximizesConcaveQuadratic) {
  const auto res = gradient_ascent(
      [](std::span<const double> x) {
        return -(x[0] - 1.0) * (x[0] - 1.0) - (x[1] + 2.0) * (x[1] + 2.0);
      },
      {0.0, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], -2.0, 1e-3);
  EXPECT_NEAR(res.value, 0.0, 1e-5);
}

TEST(GradientAscent, RespectsLowerBounds) {
  GradientAscentOptions opts;
  opts.lower_bounds = {2.0};
  const auto res = gradient_ascent(
      [](std::span<const double> x) { return -x[0] * x[0]; }, {5.0}, opts);
  // Unconstrained max is x = 0, but the bound pins it at 2.
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
}

TEST(GradientAscent, StartBelowBoundIsProjectedUp) {
  GradientAscentOptions opts;
  opts.lower_bounds = {1.0};
  const auto res = gradient_ascent(
      [](std::span<const double> x) { return -(x[0] - 3.0) * (x[0] - 3.0); },
      {0.0}, opts);
  EXPECT_NEAR(res.x[0], 3.0, 1e-3);
}

TEST(GradientAscent, ValidatesInputs) {
  EXPECT_THROW(gradient_ascent([](std::span<const double>) { return 0.0; }, {}),
               std::invalid_argument);
  GradientAscentOptions opts;
  opts.lower_bounds = {0.0, 0.0};
  EXPECT_THROW(gradient_ascent([](std::span<const double>) { return 0.0; },
                               {1.0}, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::util
