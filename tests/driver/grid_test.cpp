#include "driver/grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace manytiers::driver {
namespace {

ExperimentGrid tiny_grid() {
  ExperimentGrid grid;
  grid.name = "tiny";
  grid.datasets = {workload::DatasetKind::EuIsp, workload::DatasetKind::Cdn};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity,
                       demand::DemandKind::Logit};
  grid.cost_kinds = {CostKind::Linear, CostKind::Regional};
  grid.strategies = {pricing::Strategy::Optimal,
                     pricing::Strategy::ProfitWeighted,
                     pricing::Strategy::IndexDivision};
  grid.max_bundles = 3;
  grid.base.n_flows = 20;
  return grid;
}

TEST(GridEnumeration, CompleteAndLexicographic) {
  const auto grid = tiny_grid();
  const auto cells = enumerate_cells(grid);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 3u);
  // Dataset-major, strategy-minor: the first block holds the first
  // dataset with the first demand/cost kinds, cycling strategies fastest.
  EXPECT_EQ(cells[0].dataset, workload::DatasetKind::EuIsp);
  EXPECT_EQ(cells[0].strategy, pricing::Strategy::Optimal);
  EXPECT_EQ(cells[1].strategy, pricing::Strategy::ProfitWeighted);
  EXPECT_EQ(cells[2].strategy, pricing::Strategy::IndexDivision);
  EXPECT_EQ(cells[3].cost, CostKind::Regional);
  EXPECT_EQ(cells[6].demand, demand::DemandKind::Logit);
  EXPECT_EQ(cells[12].dataset, workload::DatasetKind::Cdn);
  // Every cell distinct (completeness of the cross product).
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_FALSE(cells[i] == cells[j]) << i << " vs " << j;
    }
  }
}

TEST(GridEnumeration, DeterministicAcrossCalls) {
  const auto grid = tiny_grid();
  const auto first = enumerate_cells(grid);
  const auto second = enumerate_cells(grid);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i] == second[i]);
  }
}

TEST(GridValidation, RejectsEmptyAxes) {
  for (const int axis : {0, 1, 2, 3}) {
    auto grid = tiny_grid();
    if (axis == 0) grid.datasets.clear();
    if (axis == 1) grid.demand_kinds.clear();
    if (axis == 2) grid.cost_kinds.clear();
    if (axis == 3) grid.strategies.clear();
    EXPECT_THROW(validate_grid(grid), std::invalid_argument) << axis;
  }
}

TEST(GridValidation, RejectsDuplicateAxisEntries) {
  auto grid = tiny_grid();
  grid.datasets.push_back(workload::DatasetKind::EuIsp);
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);

  grid = tiny_grid();
  grid.strategies.push_back(pricing::Strategy::Optimal);
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);

  grid = tiny_grid();
  grid.sweep.kind = SweepAxis::Kind::Alpha;
  grid.sweep.values = {1.5, 2.0, 1.5};
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);
}

TEST(GridValidation, RejectsDegenerateParameters) {
  auto grid = tiny_grid();
  grid.max_bundles = 0;
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);

  grid = tiny_grid();
  grid.base.alpha = 1.0;  // CED profit diverges at alpha <= 1
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);

  grid = tiny_grid();
  grid.base.n_flows = 1;
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);
}

TEST(GridValidation, RejectsInconsistentSweeps) {
  auto grid = tiny_grid();
  grid.sweep.values = {1.5};  // values without an axis
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);

  grid = tiny_grid();
  grid.sweep.kind = SweepAxis::Kind::Alpha;  // axis without values
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);

  grid = tiny_grid();  // CED in demand_kinds, but s0 is logit-only
  grid.sweep.kind = SweepAxis::Kind::NoPurchaseShare;
  grid.sweep.values = {0.1, 0.3};
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);

  grid = tiny_grid();
  grid.sweep.kind = SweepAxis::Kind::Alpha;
  grid.sweep.values = {0.9};  // swept alpha must stay above 1
  EXPECT_THROW(validate_grid(grid), std::invalid_argument);
}

TEST(GridCells, KeyRoundTripsEveryEnumValue) {
  const auto grid = tiny_grid();
  for (const auto& cell : enumerate_cells(grid)) {
    EXPECT_TRUE(parse_cell_key(cell_key(cell)) == cell) << cell_key(cell);
  }
  EXPECT_THROW(parse_cell_key("EU ISP/ced/linear"), std::invalid_argument);
  EXPECT_THROW(parse_cell_key("mars/ced/linear/Optimal"),
               std::invalid_argument);
}

TEST(GridSignature, DistinguishesGridsAndTracksParameters) {
  const auto base = grid_signature(tiny_grid());
  EXPECT_EQ(base, grid_signature(tiny_grid()));  // stable

  auto grid = tiny_grid();
  grid.base.seed = 43;
  EXPECT_NE(base, grid_signature(grid));

  grid = tiny_grid();
  grid.strategies.pop_back();
  EXPECT_NE(base, grid_signature(grid));

  grid = tiny_grid();
  grid.sweep.kind = SweepAxis::Kind::BlendedPrice;
  grid.sweep.values = {10.0, 20.0};
  EXPECT_NE(base, grid_signature(grid));
}

TEST(NamedGrids, CostModelsGridSweepsAllFourCostFamilies) {
  // The Figs. 10-13 family: every CostKind crossed with both demand
  // models, so one batch run yields the full cost-model comparison.
  const auto grid = costmodels_grid();
  EXPECT_EQ(grid.name, "costmodels");
  ASSERT_EQ(grid.cost_kinds.size(), 4u);
  for (const auto kind : {CostKind::Linear, CostKind::Concave,
                          CostKind::Regional, CostKind::DestType}) {
    EXPECT_NE(std::find(grid.cost_kinds.begin(), grid.cost_kinds.end(), kind),
              grid.cost_kinds.end())
        << to_string(kind);
  }
  EXPECT_EQ(grid.demand_kinds.size(), 2u);
  EXPECT_NO_THROW(validate_grid(grid));
  // Cells enumerate the full cross product, cost-kind in the middle.
  const auto cells = enumerate_cells(grid);
  EXPECT_EQ(cells.size(), grid.datasets.size() * grid.demand_kinds.size() *
                              4u * grid.strategies.size());
}

TEST(NamedGrids, AllValidateAndResolve) {
  for (const auto name : grid_names()) {
    const auto grid = named_grid(name);
    EXPECT_EQ(grid.name, name);
    EXPECT_NO_THROW(validate_grid(grid));
  }
  EXPECT_THROW(named_grid("no-such-grid"), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::driver
