#include "driver/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "driver/runner.hpp"

namespace manytiers::driver {
namespace {

RunOptions per_point_run(ShardPlan shard = {}) {
  RunOptions options;
  options.shard = shard;
  options.per_point = true;
  return options;
}

ExperimentGrid small_grid() {
  ExperimentGrid grid;
  grid.name = "report-test";
  grid.datasets = {workload::DatasetKind::EuIsp};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity,
                       demand::DemandKind::Logit};
  grid.cost_kinds = {CostKind::Linear};
  grid.strategies = {pricing::Strategy::Optimal,
                     pricing::Strategy::CostWeighted};
  grid.max_bundles = 3;
  grid.base.n_flows = 30;
  return grid;
}

TEST(BatchReportIo, RoundTripsBitExactly) {
  const auto report = run_grid(small_grid());
  const std::string text = report_to_string(report);
  std::istringstream in(text);
  const auto parsed = read_report(in);
  EXPECT_EQ(parsed.grid_name, report.grid_name);
  EXPECT_EQ(parsed.signature, report.signature);
  EXPECT_EQ(parsed.max_bundles, report.max_bundles);
  EXPECT_EQ(parsed.points_per_cell, report.points_per_cell);
  EXPECT_EQ(parsed.shard_index, report.shard_index);
  EXPECT_EQ(parsed.shard_count, report.shard_count);
  ASSERT_EQ(parsed.cells.size(), report.cells.size());
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    EXPECT_TRUE(parsed.cells[c].cell == report.cells[c].cell);
    // %.17g round-trips doubles exactly, so the parsed envelope must be
    // bit-identical, not merely close.
    EXPECT_EQ(parsed.cells[c].sweep.min_capture,
              report.cells[c].sweep.min_capture);
    EXPECT_EQ(parsed.cells[c].sweep.max_capture,
              report.cells[c].sweep.max_capture);
    EXPECT_EQ(parsed.cells[c].sweep.points, report.cells[c].sweep.points);
  }
  // And a re-render of the parsed report reproduces the bytes.
  EXPECT_EQ(report_to_string(parsed), text);
}

TEST(BatchReportIo, PartialShardRoundTripsThroughFiles) {
  const auto grid = small_grid();
  const auto unsharded = run_grid(grid);
  std::vector<BatchReport> parts;
  for (std::size_t k = 0; k < 3; ++k) {
    const auto part = run_grid(grid, {.shard = {k, 3}});
    // Serialize and re-read each partial, as the CLI's --merge path does;
    // untouched cells (points == 0) must survive the trip.
    std::istringstream in(report_to_string(part));
    parts.push_back(read_report(in));
  }
  const auto merged = merge_shards(parts);
  for (std::size_t c = 0; c < merged.cells.size(); ++c) {
    EXPECT_EQ(merged.cells[c].sweep.min_capture,
              unsharded.cells[c].sweep.min_capture);
    EXPECT_EQ(merged.cells[c].sweep.max_capture,
              unsharded.cells[c].sweep.max_capture);
  }
}

TEST(BatchReportIo, TimingLinesAreOptionalAndSkippedByParser) {
  const auto report = run_grid(small_grid());
  const std::string stable = report_to_string(report, false);
  EXPECT_EQ(stable.find("wall_ms"), std::string::npos);
  // Non-report chatter (bench tables, logs) is ignored by the reader.
  std::istringstream in("starting up\n" + stable + "done\n");
  const auto parsed = read_report(in);
  EXPECT_EQ(parsed.cells.size(), report.cells.size());
  EXPECT_EQ(parsed.wall_ms, 0.0);
}

TEST(BatchReportIo, RejectsCorruptReports) {
  std::istringstream empty("no batch lines here\n");
  EXPECT_THROW(read_report(empty), std::invalid_argument);

  // Cell before grid record.
  std::istringstream disordered(
      "BATCH_JSON {\"type\":\"cell\",\"key\":\"EU ISP/ced/linear/Optimal\","
      "\"points\":0,\"min\":[],\"max\":[]}\n");
  EXPECT_THROW(read_report(disordered), std::invalid_argument);

  // Declared cell count does not match the records present.
  const auto report = run_grid(small_grid());
  std::string text = report_to_string(report, false);
  text += "BATCH_JSON {\"type\":\"cell\",\"key\":\"EU ISP/ced/linear/"
          "Optimal\",\"points\":0,\"min\":[],\"max\":[]}\n";
  std::istringstream extra(text);
  EXPECT_THROW(read_report(extra), std::invalid_argument);
}

TEST(ValidatePart, AcceptsEveryShardOfACleanRun) {
  const auto grid = small_grid();
  for (std::size_t k = 0; k < 3; ++k) {
    const auto part = run_grid(grid, {.shard = {k, 3}});
    EXPECT_NO_THROW(validate_part(part, grid, k, 3));
  }
}

TEST(ValidatePart, RejectsWrongGridAndWrongShardCoordinates) {
  const auto grid = small_grid();
  const auto part = run_grid(grid, {.shard = {0, 2}});

  auto other = grid;
  other.base.seed = 99;  // different signature
  EXPECT_THROW(validate_part(part, other, 0, 2), std::invalid_argument);

  // Part claims shard 0/2 but is checked as 1/2 (a mixed-up part file).
  EXPECT_THROW(validate_part(part, grid, 1, 2), std::invalid_argument);
  EXPECT_THROW(validate_part(part, grid, 0, 3), std::invalid_argument);
}

TEST(ValidatePart, RejectsTruncatedAndPaddedParts) {
  const auto grid = small_grid();
  auto part = run_grid(grid, {.shard = {0, 2}});

  // A parseable part that lost a cell record: torn write survivor.
  auto truncated = part;
  truncated.cells.pop_back();
  EXPECT_THROW(validate_part(truncated, grid, 0, 2), std::invalid_argument);

  // A cell claiming more evaluated points than the shard plan owns.
  auto padded = part;
  padded.cells[0].sweep.points += 1;
  EXPECT_THROW(validate_part(padded, grid, 0, 2), std::invalid_argument);

  // Zeroed point counts (a worker that wrote headers but no work).
  auto empty = part;
  for (auto& cell : empty.cells) cell.sweep.points = 0;
  EXPECT_THROW(validate_part(empty, grid, 0, 2), std::invalid_argument);
}

TEST(BatchReportIo, PerPointRoundTripsBitExactly) {
  // Schema v2: per-point capture vectors ride along as "point" records
  // and must round-trip with the same %.17g bit-exactness as envelopes.
  const auto report = run_grid(small_grid(), per_point_run());
  ASSERT_TRUE(report.per_point);
  const std::string text = report_to_string(report, false);
  EXPECT_NE(text.find("\"per_point\":1"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"point\""), std::string::npos);
  std::istringstream in(text);
  const auto parsed = read_report(in);
  ASSERT_TRUE(parsed.per_point);
  ASSERT_EQ(parsed.cells.size(), report.cells.size());
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    ASSERT_EQ(parsed.cells[c].detail.size(), report.cells[c].detail.size());
    for (std::size_t p = 0; p < report.cells[c].detail.size(); ++p) {
      EXPECT_EQ(parsed.cells[c].detail[p].point,
                report.cells[c].detail[p].point);
      EXPECT_EQ(parsed.cells[c].detail[p].capture,
                report.cells[c].detail[p].capture);
    }
  }
  EXPECT_EQ(report_to_string(parsed, false), text);
}

TEST(BatchReportIo, SchemaV1OutputIsUnchangedWithoutPerPoint) {
  // v2 is strictly additive: a run without --per-point must serialize
  // byte-identically to what the v1 writer produced.
  const auto report = run_grid(small_grid());
  const std::string text = report_to_string(report, false);
  EXPECT_EQ(text.find("per_point"), std::string::npos);
  EXPECT_EQ(text.find("\"type\":\"point\""), std::string::npos);
}

TEST(BatchReportIo, PerPointShardedMergeIsByteIdentical) {
  const auto grid = small_grid();
  const auto unsharded = run_grid(grid, per_point_run());
  std::vector<BatchReport> parts;
  for (std::size_t k = 0; k < 3; ++k) {
    const auto part = run_grid(grid, per_point_run({k, 3}));
    EXPECT_NO_THROW(validate_part(part, grid, k, 3));
    std::istringstream in(report_to_string(part, false));
    parts.push_back(read_report(in));
  }
  const auto merged = merge_shards(parts);
  EXPECT_EQ(report_to_string(merged, false),
            report_to_string(unsharded, false));
}

TEST(BatchReportIo, MergeRejectsMixedPerPointParts) {
  const auto grid = small_grid();
  std::vector<BatchReport> parts;
  parts.push_back(run_grid(grid, per_point_run({0, 2})));
  parts.push_back(run_grid(grid, {.shard = {1, 2}}));
  EXPECT_THROW(merge_shards(parts), std::invalid_argument);
}

TEST(ValidatePart, RejectsTamperedPerPointDetail) {
  const auto grid = small_grid();
  const auto part = run_grid(grid, per_point_run({0, 2}));
  ASSERT_FALSE(part.cells.empty());
  ASSERT_FALSE(part.cells[0].detail.empty());

  // A point this shard does not own under round-robin sharding.
  auto unowned = part;
  unowned.cells[0].detail[0].point += 1;
  EXPECT_THROW(validate_part(unowned, grid, 0, 2), std::invalid_argument);

  // Capture vector of the wrong length (truncated mid-record).
  auto short_vec = part;
  short_vec.cells[0].detail[0].capture.pop_back();
  EXPECT_THROW(validate_part(short_vec, grid, 0, 2), std::invalid_argument);

  // Per-point data that disagrees with the cell's envelope fold.
  auto skewed = part;
  for (auto& v : skewed.cells[0].detail[0].capture) v += 1.0;
  EXPECT_THROW(validate_part(skewed, grid, 0, 2), std::invalid_argument);
}

TEST(CaptureTable, CutsOneDatasetInStrategyOrder) {
  const auto report = run_grid(small_grid());
  const auto table = capture_table(report, workload::DatasetKind::EuIsp);
  // 2 demand kinds x 2 strategies rows, B columns + label.
  EXPECT_EQ(table.row_count(), 4u);
  EXPECT_EQ(table.column_count(), 4u);
  const auto none = capture_table(report, workload::DatasetKind::Cdn);
  EXPECT_EQ(none.row_count(), 0u);
}

}  // namespace
}  // namespace manytiers::driver
