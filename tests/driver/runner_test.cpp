#include "driver/runner.hpp"

#include <gtest/gtest.h>

namespace manytiers::driver {
namespace {

// Small but non-trivial: two datasets, both demand models, an alpha
// sweep, and strategies that exercise the DP and the heuristics.
ExperimentGrid sweep_grid() {
  ExperimentGrid grid;
  grid.name = "runner-test";
  grid.datasets = {workload::DatasetKind::EuIsp,
                   workload::DatasetKind::Internet2};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity,
                       demand::DemandKind::Logit};
  grid.cost_kinds = {CostKind::Linear};
  grid.strategies = {pricing::Strategy::Optimal,
                     pricing::Strategy::ProfitWeighted,
                     pricing::Strategy::CostDivision};
  grid.max_bundles = 4;
  grid.base.n_flows = 40;
  grid.sweep.kind = SweepAxis::Kind::Alpha;
  grid.sweep.values = {1.1, 1.5, 3.0};
  return grid;
}

void expect_same_payload(const BatchReport& a, const BatchReport& b) {
  ASSERT_EQ(a.signature, b.signature);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    EXPECT_TRUE(a.cells[c].cell == b.cells[c].cell);
    EXPECT_EQ(a.cells[c].sweep.points, b.cells[c].sweep.points);
    // Exact double equality: the engine promises bit-identical envelopes.
    EXPECT_EQ(a.cells[c].sweep.min_capture, b.cells[c].sweep.min_capture)
        << cell_key(a.cells[c].cell);
    EXPECT_EQ(a.cells[c].sweep.max_capture, b.cells[c].sweep.max_capture)
        << cell_key(a.cells[c].cell);
  }
}

TEST(RunGrid, EveryCellFullyEvaluated) {
  const auto grid = sweep_grid();
  const auto report = run_grid(grid, {.threads = 2, .shard = {}});
  EXPECT_EQ(report.grid_name, "runner-test");
  EXPECT_EQ(report.signature, grid_signature(grid));
  EXPECT_EQ(report.points_per_cell, 3u);
  ASSERT_EQ(report.cells.size(), 2u * 2u * 1u * 3u);
  for (const auto& cell : report.cells) {
    EXPECT_EQ(cell.sweep.points, 3u);
    ASSERT_EQ(cell.sweep.min_capture.size(), grid.max_bundles);
    for (std::size_t b = 0; b < grid.max_bundles; ++b) {
      EXPECT_LE(cell.sweep.min_capture[b], cell.sweep.max_capture[b]);
    }
  }
}

TEST(RunGrid, BitIdenticalAcrossThreadCounts) {
  const auto grid = sweep_grid();
  const auto serial = run_grid(grid, {.threads = 1, .shard = {}});
  for (const std::size_t threads : {2u, 4u}) {
    const auto parallel = run_grid(grid, {.threads = threads, .shard = {}});
    expect_same_payload(serial, parallel);
  }
}

TEST(RunGrid, MatchesTheSweepEngineCellByCell) {
  // The driver is a fan-out over the same sweep machinery the per-figure
  // benches use; an alpha-sweep cell must equal sweep_alpha exactly.
  auto grid = sweep_grid();
  grid.datasets = {workload::DatasetKind::EuIsp};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity};
  grid.strategies = {pricing::Strategy::ProfitWeighted};
  const auto report = run_grid(grid, {.threads = 2, .shard = {}});
  ASSERT_EQ(report.cells.size(), 1u);

  const auto flows = workload::generate_dataset(
      workload::DatasetKind::EuIsp,
      {.seed = grid.base.seed, .n_flows = grid.base.n_flows});
  const auto cost = make_cost_model(CostKind::Linear, grid.base.theta);
  pricing::SensitivityInputs inputs;
  inputs.flows = &flows;
  inputs.cost_model = cost.get();
  inputs.demand.kind = demand::DemandKind::ConstantElasticity;
  inputs.blended_price = grid.base.blended_price;
  inputs.strategy = pricing::Strategy::ProfitWeighted;
  inputs.max_bundles = grid.max_bundles;
  const auto expected = pricing::sweep_alpha(inputs, grid.sweep.values);
  EXPECT_EQ(report.cells[0].sweep.min_capture, expected.min_capture);
  EXPECT_EQ(report.cells[0].sweep.max_capture, expected.max_capture);
  EXPECT_EQ(report.cells[0].sweep.points, expected.points);
}

TEST(ShardMerge, AnyShardCountReproducesTheUnshardedRun) {
  const auto grid = sweep_grid();
  const auto unsharded = run_grid(grid, {.threads = 2, .shard = {}});
  for (const std::size_t shard_count : {1u, 2u, 3u, 5u}) {
    std::vector<BatchReport> parts;
    for (std::size_t k = 0; k < shard_count; ++k) {
      parts.push_back(run_grid(grid, {.threads = 2, .shard = {k, shard_count}}));
    }
    const auto merged = merge_shards(parts);
    expect_same_payload(unsharded, merged);
  }
}

TEST(ShardMerge, ShardsPartitionTheTasks) {
  const auto grid = sweep_grid();
  const auto parts = std::vector<BatchReport>{
      run_grid(grid, {.threads = 0, .shard = {0, 3}}), run_grid(grid, {.threads = 0, .shard = {1, 3}}),
      run_grid(grid, {.threads = 0, .shard = {2, 3}})};
  std::size_t total = 0;
  for (const auto& part : parts) {
    for (const auto& cell : part.cells) total += cell.sweep.points;
  }
  EXPECT_EQ(total, grid.sweep.values.size() * 12u);  // every task exactly once
}

TEST(ShardMerge, RejectsMalformedShardSets) {
  const auto grid = sweep_grid();
  const auto s0 = run_grid(grid, {.threads = 0, .shard = {0, 2}});
  const auto s1 = run_grid(grid, {.threads = 0, .shard = {1, 2}});

  EXPECT_THROW(merge_shards({}), std::invalid_argument);
  // Duplicate shard.
  EXPECT_THROW(merge_shards({s0, s0}), std::invalid_argument);
  // Incomplete set: shard_count says 2 but only one report.
  EXPECT_THROW(merge_shards({s0}), std::invalid_argument);
  // Mixed grids.
  auto other = grid;
  other.base.seed = 7;
  const auto foreign = run_grid(other, {.threads = 0, .shard = {1, 2}});
  EXPECT_THROW(merge_shards({s0, foreign}), std::invalid_argument);
}

TEST(RunGrid, RejectsBadShardPlans) {
  const auto grid = sweep_grid();
  EXPECT_THROW(run_grid(grid, {.threads = 0, .shard = {0, 0}}), std::invalid_argument);
  EXPECT_THROW(run_grid(grid, {.threads = 0, .shard = {2, 2}}), std::invalid_argument);
  EXPECT_THROW(run_grid(grid, {.threads = 0, .shard = {5, 3}}), std::invalid_argument);
}

TEST(RunGrid, AcceptanceFullDefaultGridShardsBitIdentically) {
  // The PR's acceptance criterion: K = 4 shards of the full default grid
  // merge back to the unsharded report exactly.
  const auto grid = default_grid();
  const auto unsharded = run_grid(grid);
  std::vector<BatchReport> parts;
  for (std::size_t k = 0; k < 4; ++k) {
    parts.push_back(run_grid(grid, {.threads = 0, .shard = {k, 4}}));
  }
  expect_same_payload(unsharded, merge_shards(parts));
}

}  // namespace
}  // namespace manytiers::driver
