// Golden regression for the whole counterfactual pipeline: dataset
// synthesis -> calibration -> bundling -> pricing -> capture -> report.
// The checked-in report was produced by `manytiers_batch --grid smoke
// --no-timing`; any refactor of the DP, series, calibration, or report
// code that shifts a double by one ulp fails here in ctest instead of
// silently bending the figures.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "driver/report.hpp"
#include "driver/runner.hpp"

#ifndef MANYTIERS_TEST_DATA_DIR
#error "MANYTIERS_TEST_DATA_DIR must point at tests/driver/data"
#endif

namespace manytiers::driver {
namespace {

std::string golden_path() {
  return std::string(MANYTIERS_TEST_DATA_DIR) + "/golden_smoke.batch";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden report: " << path
                            << " (regenerate with `manytiers_batch --grid "
                               "smoke --no-timing --out " << path << "`)";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(GoldenReport, SmokeGridReproducesBitForBit) {
  const auto report = run_grid(smoke_grid());
  EXPECT_EQ(report_to_string(report, /*include_timing=*/false),
            read_file(golden_path()));
}

TEST(GoldenReport, ShardedSmokeGridReproducesBitForBit) {
  const auto grid = smoke_grid();
  std::vector<BatchReport> parts;
  for (std::size_t k = 0; k < 2; ++k) {
    parts.push_back(run_grid(grid, {.shard = {k, 2}}));
  }
  EXPECT_EQ(report_to_string(merge_shards(parts), /*include_timing=*/false),
            read_file(golden_path()));
}

TEST(GoldenReport, GoldenFileParsesAndMatchesTheSmokeSignature) {
  std::istringstream in(read_file(golden_path()));
  const auto golden = read_report(in);
  EXPECT_EQ(golden.signature, grid_signature(smoke_grid()));
  EXPECT_EQ(golden.cells.size(), enumerate_cells(smoke_grid()).size());
  for (const auto& cell : golden.cells) {
    EXPECT_EQ(cell.sweep.points, golden.points_per_cell);
  }
}

}  // namespace
}  // namespace manytiers::driver
