#include "pricing/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/generators.hpp"

namespace manytiers::pricing {
namespace {

Market make_market(demand::DemandKind kind, double alpha = 1.1,
                   double p0 = 20.0) {
  const auto flows = workload::generate_eu_isp({.seed = 11, .n_flows = 60});
  const auto cost = cost::make_linear_cost(0.2);
  DemandSpec spec;
  spec.kind = kind;
  spec.alpha = alpha;
  return Market::calibrate(flows, spec, *cost, p0);
}

class EngineBothModels : public ::testing::TestWithParam<demand::DemandKind> {
};

TEST_P(EngineBothModels, CalibrationInvariant_SingleBundleRepricesToP0) {
  // The whole calibration hinges on this: the profit-maximizing price of
  // a single blended bundle must be exactly the observed blended rate.
  const auto m = make_market(GetParam());
  const auto priced = price_bundles(m, bundling::single_bundle(m.size()));
  ASSERT_EQ(priced.bundle_prices.size(), 1u);
  EXPECT_NEAR(priced.bundle_prices[0], 20.0, 1e-6 * 20.0);
  EXPECT_NEAR(priced.profit, blended_profit(m), 1e-6 * priced.profit);
}

TEST_P(EngineBothModels, PerFlowPricingAttainsMaxProfit) {
  const auto m = make_market(GetParam());
  const auto priced = price_bundles(m, bundling::per_flow_bundles(m.size()));
  EXPECT_NEAR(priced.profit, max_profit(m), 1e-6 * priced.profit);
}

TEST_P(EngineBothModels, MaxProfitExceedsBlendedProfit) {
  const auto m = make_market(GetParam());
  EXPECT_GT(max_profit(m), blended_profit(m));
}

TEST_P(EngineBothModels, CaptureEndpoints) {
  const auto m = make_market(GetParam());
  EXPECT_NEAR(capture_of(m, bundling::single_bundle(m.size())), 0.0, 1e-6);
  EXPECT_NEAR(capture_of(m, bundling::per_flow_bundles(m.size())), 1.0, 1e-6);
}

TEST_P(EngineBothModels, FlowPricesMirrorBundlePrices) {
  const auto m = make_market(GetParam());
  bundling::Bundling two;
  bundling::Bundle a, b;
  for (std::size_t i = 0; i < m.size(); ++i) {
    (i % 2 == 0 ? a : b).push_back(i);
  }
  two.push_back(a);
  two.push_back(b);
  const auto priced = price_bundles(m, two);
  ASSERT_EQ(priced.bundle_prices.size(), 2u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(priced.flow_prices[i],
                     priced.bundle_prices[i % 2 == 0 ? 0 : 1]);
  }
}

TEST_P(EngineBothModels, PotentialProfitsArePositive) {
  const auto m = make_market(GetParam());
  const auto pi = potential_profits(m);
  ASSERT_EQ(pi.size(), m.size());
  for (const double p : pi) EXPECT_GT(p, 0.0);
}

TEST_P(EngineBothModels, PriceBundlesValidatesPartition) {
  const auto m = make_market(GetParam());
  bundling::Bundling bad{{0, 1}};  // misses most flows
  EXPECT_THROW(price_bundles(m, bad), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EngineBothModels,
    ::testing::Values(demand::DemandKind::ConstantElasticity,
                      demand::DemandKind::Logit),
    [](const auto& info) {
      return info.param == demand::DemandKind::ConstantElasticity ? "Ced"
                                                                  : "Logit";
    });

TEST(Engine, CedPotentialProfitMatchesModelFormula) {
  const auto m = make_market(demand::DemandKind::ConstantElasticity);
  const auto pi = potential_profits(m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(pi[i],
                m.ced().potential_profit(m.valuations()[i], m.costs()[i]),
                1e-12);
  }
}

TEST(Engine, LogitPotentialProfitIsObservedDemand) {
  const auto m = make_market(demand::DemandKind::Logit);
  EXPECT_EQ(potential_profits(m), m.flows().demands());
}

TEST(Engine, CedBundlePricesAreBetweenMemberOptima) {
  const auto m = make_market(demand::DemandKind::ConstantElasticity);
  const auto priced = price_bundles(m, bundling::single_bundle(m.size()));
  double min_p = 1e300, max_p = -1e300;
  for (const double c : m.costs()) {
    min_p = std::min(min_p, m.ced().optimal_price(c));
    max_p = std::max(max_p, m.ced().optimal_price(c));
  }
  EXPECT_GE(priced.bundle_prices[0], min_p - 1e-9);
  EXPECT_LE(priced.bundle_prices[0], max_p + 1e-9);
}

TEST(Engine, CachedBaselinesMatchFreshComputation) {
  // blended_profit / max_profit are served from the Market's lazy cache;
  // they must equal the from-scratch model evaluation exactly.
  {
    const auto m = make_market(demand::DemandKind::ConstantElasticity);
    const std::vector<double> blended(m.size(), m.blended_price());
    const double fresh_blended =
        m.ced().total_profit(m.valuations(), m.costs(), blended);
    double fresh_max = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      fresh_max += m.ced().potential_profit(m.valuations()[i], m.costs()[i]);
    }
    EXPECT_EQ(blended_profit(m), fresh_blended);
    EXPECT_EQ(max_profit(m), fresh_max);
  }
  {
    const auto m = make_market(demand::DemandKind::Logit);
    const std::vector<double> blended(m.size(), m.blended_price());
    const double fresh_blended =
        m.logit().total_profit(m.valuations(), m.costs(), blended);
    const double fresh_max =
        m.logit().optimal_prices(m.valuations(), m.costs()).profit;
    EXPECT_EQ(blended_profit(m), fresh_blended);
    EXPECT_EQ(max_profit(m), fresh_max);
  }
}

TEST(Engine, CachedBaselinesAreStableAcrossRepeatedCalls) {
  const auto m = make_market(demand::DemandKind::Logit);
  const double first_blended = blended_profit(m);
  const double first_max = max_profit(m);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(blended_profit(m), first_blended);
    EXPECT_EQ(max_profit(m), first_max);
  }
  // Copies share the calibrated state, and the cached invariants with it.
  const Market copy = m;
  EXPECT_EQ(blended_profit(copy), first_blended);
  EXPECT_EQ(max_profit(copy), first_max);
}

TEST(Engine, ProfitCaptureIsMonotoneInProfit) {
  const auto m = make_market(demand::DemandKind::ConstantElasticity);
  const double lo = blended_profit(m);
  const double hi = max_profit(m);
  EXPECT_LT(profit_capture(m, lo), profit_capture(m, (lo + hi) / 2.0));
  EXPECT_LT(profit_capture(m, (lo + hi) / 2.0), profit_capture(m, hi));
}

TEST(Engine, SplittingABundleNeverReducesProfit) {
  // Finer partitions weakly dominate: check single -> a 2-way split.
  const auto m = make_market(demand::DemandKind::ConstantElasticity);
  const double one = price_bundles(m, bundling::single_bundle(m.size())).profit;
  bundling::Bundle low, high;
  for (std::size_t i = 0; i < m.size(); ++i) {
    (m.costs()[i] < m.gamma() * 50.0 ? low : high).push_back(i);
  }
  if (!low.empty() && !high.empty()) {
    const double two = price_bundles(m, {low, high}).profit;
    EXPECT_GE(two, one - 1e-9);
  }
}

}  // namespace
}  // namespace manytiers::pricing
