#include "pricing/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>

#include "obs/registry.hpp"
#include "workload/generators.hpp"

namespace manytiers::pricing {
namespace {

workload::FlowSet small_flows() {
  workload::FlowSet fs("small");
  const double demands[] = {100.0, 40.0, 5.0, 70.0, 12.0};
  const double distances[] = {2.0, 30.0, 500.0, 80.0, 1500.0};
  for (int i = 0; i < 5; ++i) {
    workload::Flow f;
    f.demand_mbps = demands[i];
    f.distance_miles = distances[i];
    f.region = geo::classify_distance(distances[i]);
    fs.add(f);
  }
  return fs;
}

TEST(Market, CedCalibrationPopulatesEverything) {
  const auto cost = cost::make_linear_cost(0.2);
  const auto m = Market::calibrate(small_flows(), DemandSpec{}, *cost, 20.0);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.valuations().size(), 5u);
  EXPECT_EQ(m.costs().size(), 5u);
  EXPECT_GT(m.gamma(), 0.0);
  EXPECT_DOUBLE_EQ(m.blended_price(), 20.0);
  EXPECT_NO_THROW(m.ced());
  EXPECT_THROW(m.logit(), std::logic_error);
  for (const double c : m.costs()) EXPECT_GT(c, 0.0);
}

TEST(Market, LogitCalibrationPopulatesEverything) {
  DemandSpec spec;
  spec.kind = demand::DemandKind::Logit;
  spec.alpha = 1.1;
  spec.no_purchase_share = 0.2;
  const auto cost = cost::make_linear_cost(0.2);
  const auto m = Market::calibrate(small_flows(), spec, *cost, 20.0);
  EXPECT_NO_THROW(m.logit());
  EXPECT_THROW(m.ced(), std::logic_error);
  EXPECT_NEAR(m.logit().market_size(), 227.0 / 0.8, 1e-9);
}

TEST(Market, CostsAreGammaTimesRelative) {
  const auto cost = cost::make_linear_cost(0.1);
  const auto m = Market::calibrate(small_flows(), DemandSpec{}, *cost, 20.0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(m.costs()[i], m.gamma() * m.relative_costs()[i], 1e-12);
  }
}

TEST(Market, DestTypeCostExpandsFlows) {
  const auto cost = cost::make_dest_type_cost(0.1);
  const auto m = Market::calibrate(small_flows(), DemandSpec{}, *cost, 20.0);
  EXPECT_EQ(m.size(), 10u);  // each flow split into on-net/off-net
  EXPECT_EQ(m.cost_class_count(), 2u);
}

TEST(Market, RegionalCostYieldsThreeClasses) {
  const auto cost = cost::make_regional_cost(1.1);
  const auto m = Market::calibrate(small_flows(), DemandSpec{}, *cost, 20.0);
  EXPECT_EQ(m.cost_class_count(), 3u);
  // All metro flows share a relative cost of 1.
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.flows()[i].region == geo::Region::Metro) {
      EXPECT_DOUBLE_EQ(m.relative_costs()[i], 1.0);
    }
  }
}

TEST(Market, ContinuousCostIsSingleClass) {
  const auto cost = cost::make_linear_cost(0.2);
  const auto m = Market::calibrate(small_flows(), DemandSpec{}, *cost, 20.0);
  EXPECT_EQ(m.cost_class_count(), 1u);
}

TEST(Market, CalibrationValidates) {
  const auto cost = cost::make_linear_cost(0.2);
  EXPECT_THROW(
      Market::calibrate(workload::FlowSet("e"), DemandSpec{}, *cost, 20.0),
      std::invalid_argument);
  EXPECT_THROW(Market::calibrate(small_flows(), DemandSpec{}, *cost, 0.0),
               std::invalid_argument);
}

// The load-bearing calibration invariant, across every cost model, both
// demand models, and a spread of theta: re-optimizing a single blended
// bundle must recover exactly the observed blended rate P0.
enum class CostKind { Linear, Concave, Regional, DestType };

std::unique_ptr<cost::CostModel> make_cost(CostKind kind, double theta) {
  switch (kind) {
    case CostKind::Linear: return cost::make_linear_cost(theta);
    case CostKind::Concave: return cost::make_concave_cost(theta);
    case CostKind::Regional: return cost::make_regional_cost(1.0 + theta);
    case CostKind::DestType: return cost::make_dest_type_cost(0.05 + theta);
  }
  throw std::logic_error("unknown cost kind");
}

class CalibrationInvariant
    : public ::testing::TestWithParam<
          std::tuple<CostKind, demand::DemandKind, double>> {};

TEST_P(CalibrationInvariant, BlendedRateIsSingleBundleOptimum) {
  const auto [cost_kind, demand_kind, theta] = GetParam();
  const auto flows = workload::generate_eu_isp({.seed = 21, .n_flows = 60});
  DemandSpec spec;
  spec.kind = demand_kind;
  const auto model = make_cost(cost_kind, theta);
  const double p0 = 20.0;
  const auto m = Market::calibrate(flows, spec, *model, p0);

  switch (demand_kind) {
    case demand::DemandKind::ConstantElasticity:
      EXPECT_NEAR(m.ced().bundle_price(m.valuations(), m.costs()), p0,
                  1e-6 * p0);
      break;
    case demand::DemandKind::Logit: {
      const std::vector<double> vb{m.logit().bundle_valuation(m.valuations())};
      const std::vector<double> cb{
          m.logit().bundle_cost(m.valuations(), m.costs())};
      EXPECT_NEAR(m.logit().optimal_prices(vb, cb).prices[0], p0, 1e-5 * p0);
      break;
    }
  }
  // And demand at P0 reproduces the observed flows.
  const std::vector<double> prices(m.size(), p0);
  switch (demand_kind) {
    case demand::DemandKind::ConstantElasticity:
      for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_NEAR(m.ced().quantity(m.valuations()[i], p0),
                    m.flows()[i].demand_mbps,
                    1e-6 * m.flows()[i].demand_mbps);
      }
      break;
    case demand::DemandKind::Logit: {
      const auto q = m.logit().quantities(m.valuations(), prices);
      for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_NEAR(q[i], m.flows()[i].demand_mbps,
                    1e-6 * m.flows()[i].demand_mbps);
      }
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, CalibrationInvariant,
    ::testing::Combine(
        ::testing::Values(CostKind::Linear, CostKind::Concave,
                          CostKind::Regional, CostKind::DestType),
        ::testing::Values(demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit),
        ::testing::Values(0.05, 0.2, 0.5)));

TEST(Market, TopologyEpochRetagSwapsTheProfitCache) {
  const auto cost = cost::make_linear_cost(0.2);
  auto m = Market::calibrate(small_flows(), DemandSpec{}, *cost, 20.0);
  EXPECT_EQ(m.topology_epoch(), 0u);
  const double blended = m.blended_profit();  // primes the cache
  const double maximum = m.max_profit();

  const obs::ScopedEnable metrics;  // counters are off by default
  static obs::Counter& invalidations =
      obs::Registry::instance().counter("market.profit_cache_invalidations");
  const std::uint64_t before = invalidations.value();

  // Same-epoch tag: a no-op that keeps the primed cache.
  m.tag_topology_epoch(0);
  EXPECT_EQ(m.topology_epoch(), 0u);
  EXPECT_EQ(invalidations.value(), before);

  // New epoch: the cache is swapped for a fresh one. The market's
  // calibrated state did not change, so re-priming lands on the same
  // bits — the invalidation is observable only through the counter.
  m.tag_topology_epoch(7);
  EXPECT_EQ(m.topology_epoch(), 7u);
  EXPECT_EQ(invalidations.value(), before + 1);
  EXPECT_EQ(m.blended_profit(), blended);
  EXPECT_EQ(m.max_profit(), maximum);

  // Re-tagging the new epoch is again a no-op.
  m.tag_topology_epoch(7);
  EXPECT_EQ(invalidations.value(), before + 1);
}

TEST(Market, CopiesTakenBeforeARetagKeepTheirCache) {
  const auto cost = cost::make_linear_cost(0.2);
  auto m = Market::calibrate(small_flows(), DemandSpec{}, *cost, 20.0);
  const double blended = m.blended_profit();
  const Market copy = m;
  m.tag_topology_epoch(3);
  // The copy still answers from the old, self-consistent cache and
  // keeps its original epoch; the re-tagged original re-primes.
  EXPECT_EQ(copy.topology_epoch(), 0u);
  EXPECT_EQ(copy.blended_profit(), blended);
  EXPECT_EQ(m.blended_profit(), blended);
}

TEST(Market, WorksOnGeneratedDatasets) {
  const auto flows = workload::generate_eu_isp({.seed = 1, .n_flows = 100});
  const auto cost = cost::make_linear_cost(0.2);
  const auto m = Market::calibrate(flows, DemandSpec{}, *cost, 20.0);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_GT(m.gamma(), 0.0);
  // Costs must be below the blended price on average (the ISP profits).
  double mean_cost = 0.0;
  for (const double c : m.costs()) mean_cost += c;
  mean_cost /= double(m.size());
  EXPECT_LT(mean_cost, 20.0);
}

}  // namespace
}  // namespace manytiers::pricing
