#include "pricing/counterfactual.hpp"

#include <gtest/gtest.h>

#include "bundling/optimal.hpp"
#include "obs/registry.hpp"
#include "workload/generators.hpp"

namespace manytiers::pricing {
namespace {

Market eu_market(demand::DemandKind kind) {
  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 120});
  const auto cost = cost::make_linear_cost(0.2);
  DemandSpec spec;
  spec.kind = kind;
  spec.alpha = 1.1;
  return Market::calibrate(flows, spec, *cost, 20.0);
}

TEST(StrategyNames, AreDistinctAndReadable) {
  EXPECT_EQ(to_string(Strategy::Optimal), "Optimal");
  EXPECT_EQ(to_string(Strategy::CostDivision), "Cost division");
  EXPECT_EQ(to_string(Strategy::ClassAwareProfitWeighted),
            "Class-aware profit-weighted");
}

TEST(FigureLineups, MatchThePaper) {
  EXPECT_EQ(figure8_strategies().size(), 6u);
  EXPECT_EQ(figure9_strategies().size(), 5u);
  // Fig. 9 omits demand-weighted.
  for (const auto s : figure9_strategies()) {
    EXPECT_NE(s, Strategy::DemandWeighted);
  }
}

class StrategySweep
    : public ::testing::TestWithParam<std::tuple<demand::DemandKind, Strategy>> {
};

TEST_P(StrategySweep, ProducesValidCapturesInRange) {
  const auto [kind, strategy] = GetParam();
  const auto m = eu_market(kind);
  const auto series = capture_series(m, strategy, 6);
  ASSERT_EQ(series.size(), 6u);
  for (const double c : series) {
    EXPECT_GE(c, -0.05);  // heuristics can be mildly below the baseline
    EXPECT_LE(c, 1.0 + 1e-9);
  }
  // One bundle cannot beat the calibrated blended rate.
  EXPECT_NEAR(series[0], 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StrategySweep,
    ::testing::Combine(
        ::testing::Values(demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit),
        ::testing::Values(Strategy::Optimal, Strategy::DemandWeighted,
                          Strategy::CostWeighted, Strategy::ProfitWeighted,
                          Strategy::CostDivision, Strategy::IndexDivision)));

TEST(Counterfactual, OptimalDominatesEveryHeuristic) {
  const auto m = eu_market(demand::DemandKind::ConstantElasticity);
  for (std::size_t b = 1; b <= 5; ++b) {
    const double best = run_strategy(m, Strategy::Optimal, b).capture;
    for (const auto s :
         {Strategy::DemandWeighted, Strategy::CostWeighted,
          Strategy::ProfitWeighted, Strategy::CostDivision,
          Strategy::IndexDivision}) {
      EXPECT_GE(best, run_strategy(m, s, b).capture - 1e-9)
          << to_string(s) << " at " << b;
    }
  }
}

TEST(Counterfactual, OptimalCaptureIsMonotoneInBundles) {
  const auto m = eu_market(demand::DemandKind::ConstantElasticity);
  const auto series = capture_series(m, Strategy::Optimal, 8);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i], series[i - 1] - 1e-9);
  }
}

TEST(Counterfactual, PaperHeadline_FewBundlesCaptureMostProfit) {
  // The paper's main result: 3-4 well-chosen bundles capture 90-95% of
  // the profit of infinitely many tiers.
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    const auto m = eu_market(kind);
    EXPECT_GE(run_strategy(m, Strategy::Optimal, 4).capture, 0.85);
  }
}

TEST(Counterfactual, RequestedBundlesRecorded) {
  const auto m = eu_market(demand::DemandKind::ConstantElasticity);
  const auto res = run_strategy(m, Strategy::ProfitWeighted, 3);
  EXPECT_EQ(res.requested_bundles, 3u);
  EXPECT_LE(res.pricing.bundles.size(), 3u);
  EXPECT_EQ(res.strategy, Strategy::ProfitWeighted);
}

TEST(Counterfactual, ClassAwareWorksOnDestTypeMarket) {
  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 60});
  const auto cost = cost::make_dest_type_cost(0.1);
  const auto m = Market::calibrate(flows, DemandSpec{}, *cost, 20.0);
  const auto res = run_strategy(m, Strategy::ClassAwareProfitWeighted, 3);
  // No bundle mixes on-net and off-net flows.
  for (const auto& bundle : res.pricing.bundles) {
    const auto cls = m.cost_classes()[bundle[0]];
    for (const auto i : bundle) EXPECT_EQ(m.cost_classes()[i], cls);
  }
}

TEST(Counterfactual, ClassAwareSeriesFallsBackBelowClassCount) {
  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 60});
  const auto cost = cost::make_dest_type_cost(0.1);
  const auto m = Market::calibrate(flows, DemandSpec{}, *cost, 20.0);
  const auto series = capture_series(m, Strategy::ClassAwareProfitWeighted, 4);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[0], 0.0, 1e-6);  // falls back to one plain bundle
}

TEST(CaptureSeries, MatchesPerCountRunStrategyExactly) {
  // The single-pass series shares sorts, DP tables, and cached baseline
  // profits across bundle counts; the captures must still be the exact
  // doubles the per-count path produces.
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    const auto m = eu_market(kind);
    for (const auto s :
         {Strategy::Optimal, Strategy::DemandWeighted, Strategy::CostWeighted,
          Strategy::ProfitWeighted, Strategy::CostDivision,
          Strategy::IndexDivision}) {
      const auto series = capture_series(m, s, 6);
      ASSERT_EQ(series.size(), 6u);
      for (std::size_t b = 1; b <= 6; ++b) {
        EXPECT_EQ(series[b - 1], run_strategy(m, s, b).capture)
            << to_string(s) << " b=" << b;
      }
    }
  }
}

TEST(CaptureSeries, ClassAwareMatchesPerCountWithFallback) {
  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 60});
  const auto cost = cost::make_dest_type_cost(0.1);
  const auto m = Market::calibrate(flows, DemandSpec{}, *cost, 20.0);
  const auto series = capture_series(m, Strategy::ClassAwareProfitWeighted, 5);
  for (std::size_t b = 1; b <= 5; ++b) {
    const auto effective = b < m.cost_class_count()
                               ? Strategy::ProfitWeighted
                               : Strategy::ClassAwareProfitWeighted;
    EXPECT_EQ(series[b - 1], run_strategy(m, effective, b).capture);
  }
}

TEST(CaptureSeries, OptimalCostsExactlyOneDpTableFill) {
  const obs::ScopedEnable metrics;
  obs::Counter& fills =
      obs::Registry::instance().counter("bundling.dp_fills");
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    const auto m = eu_market(kind);
    fills.reset();
    capture_series(m, Strategy::Optimal, 8);
    EXPECT_EQ(fills.value(), 1u);
  }
}

TEST(CaptureSeries, RejectsZeroBundles) {
  // Regression: a zero-length series used to be returned silently and
  // sweep/report code indexed past its end.
  const auto m = eu_market(demand::DemandKind::ConstantElasticity);
  EXPECT_THROW(capture_series(m, Strategy::Optimal, 0),
               std::invalid_argument);
}

TEST(Counterfactual, RejectsZeroBundles) {
  const auto m = eu_market(demand::DemandKind::ConstantElasticity);
  EXPECT_THROW(run_strategy(m, Strategy::Optimal, 0), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::pricing
