// Property tests for the counterfactual core over randomized markets
// (seeded util/rng, so failures replay deterministically). The paper's
// structural guarantees under test:
//
//  - profit capture lies in [0, 1]: optimal per-bundle pricing can never
//    do worse than the calibrated blended rate (price every bundle at P0
//    and you recover it) nor better than per-flow pricing;
//  - the Optimal strategy is monotone non-decreasing in the bundle count
//    (the DP partitions into *at most* B intervals);
//  - no heuristic beats Optimal at any bundle count (the interval DP is
//    exact: for both demand models some globally optimal partition is
//    contiguous in unit cost);
//  - the welfare accounting (pricing/welfare) is internally consistent:
//    consumer surplus is non-negative, total welfare is exactly profit
//    plus surplus, and surplus rises monotonically under price cuts.
#include "pricing/counterfactual.hpp"

#include <gtest/gtest.h>

#include "pricing/welfare.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace manytiers::pricing {
namespace {

constexpr double kEps = 1e-7;
constexpr std::size_t kMaxBundles = 5;

struct RandomMarketCase {
  workload::DatasetKind dataset{};
  demand::DemandKind demand_kind{};
  std::uint64_t seed = 0;
  std::size_t n_flows = 0;
  double alpha = 0.0;
  double theta = 0.0;
  double s0 = 0.0;
  double blended_price = 0.0;
};

std::vector<RandomMarketCase> random_cases(std::size_t count) {
  util::Rng rng(20260805);
  const workload::DatasetKind datasets[] = {workload::DatasetKind::EuIsp,
                                            workload::DatasetKind::Cdn,
                                            workload::DatasetKind::Internet2};
  std::vector<RandomMarketCase> cases;
  cases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RandomMarketCase c;
    c.dataset = datasets[rng.index(3)];
    c.demand_kind = i % 2 == 0 ? demand::DemandKind::ConstantElasticity
                               : demand::DemandKind::Logit;
    c.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1'000'000));
    c.n_flows = static_cast<std::size_t>(rng.uniform_int(30, 70));
    c.alpha = rng.uniform(1.05, 3.0);
    c.theta = rng.uniform(0.05, 0.5);
    c.s0 = rng.uniform(0.05, 0.6);
    c.blended_price = rng.uniform(5.0, 40.0);
    cases.push_back(c);
  }
  return cases;
}

Market build_market(const RandomMarketCase& c) {
  const auto flows = workload::generate_dataset(
      c.dataset, {.seed = c.seed, .n_flows = c.n_flows});
  const auto cost = cost::make_linear_cost(c.theta);
  DemandSpec spec;
  spec.kind = c.demand_kind;
  spec.alpha = c.alpha;
  spec.no_purchase_share = c.s0;
  return Market::calibrate(flows, spec, *cost, c.blended_price);
}

std::string describe(const RandomMarketCase& c) {
  return std::string(workload::to_string(c.dataset)) + " seed=" +
         std::to_string(c.seed) + " n=" + std::to_string(c.n_flows) +
         " alpha=" + std::to_string(c.alpha) +
         (c.demand_kind == demand::DemandKind::Logit ? " logit" : " ced");
}

const std::vector<Strategy>& all_base_strategies() {
  static const std::vector<Strategy> strategies = {
      Strategy::Optimal,      Strategy::DemandWeighted,
      Strategy::CostWeighted, Strategy::ProfitWeighted,
      Strategy::CostDivision, Strategy::IndexDivision};
  return strategies;
}

TEST(CounterfactualProperties, CaptureStaysWithinUnitInterval) {
  for (const auto& c : random_cases(12)) {
    const auto market = build_market(c);
    for (const auto strategy : all_base_strategies()) {
      const auto series = capture_series(market, strategy, kMaxBundles);
      ASSERT_EQ(series.size(), kMaxBundles);
      for (std::size_t b = 0; b < kMaxBundles; ++b) {
        EXPECT_GE(series[b], -kEps)
            << describe(c) << " " << to_string(strategy) << " B=" << b + 1;
        EXPECT_LE(series[b], 1.0 + kEps)
            << describe(c) << " " << to_string(strategy) << " B=" << b + 1;
      }
    }
  }
}

TEST(CounterfactualProperties, OptimalCaptureIsMonotoneInBundleCount) {
  for (const auto& c : random_cases(12)) {
    const auto market = build_market(c);
    const auto series = capture_series(market, Strategy::Optimal, kMaxBundles);
    for (std::size_t b = 1; b < kMaxBundles; ++b) {
      EXPECT_GE(series[b], series[b - 1] - kEps)
          << describe(c) << " between B=" << b << " and B=" << b + 1;
    }
  }
}

TEST(CounterfactualProperties, NoHeuristicBeatsOptimalAtAnyBundleCount) {
  for (const auto& c : random_cases(10)) {
    const auto market = build_market(c);
    const auto optimal = capture_series(market, Strategy::Optimal, kMaxBundles);
    for (const auto strategy : all_base_strategies()) {
      if (strategy == Strategy::Optimal) continue;
      const auto series = capture_series(market, strategy, kMaxBundles);
      for (std::size_t b = 0; b < kMaxBundles; ++b) {
        EXPECT_LE(series[b], optimal[b] + kEps)
            << describe(c) << " " << to_string(strategy) << " B=" << b + 1;
      }
    }
  }
}

TEST(CounterfactualProperties, SingleBundleRecoversTheBlendedRate) {
  // Calibration consistency (paper §4.1): re-optimizing one blended
  // bundle reproduces P0, so every strategy's B = 1 capture is ~0.
  for (const auto& c : random_cases(8)) {
    const auto market = build_market(c);
    for (const auto strategy : all_base_strategies()) {
      const auto series = capture_series(market, strategy, 1);
      EXPECT_NEAR(series[0], 0.0, 1e-6)
          << describe(c) << " " << to_string(strategy);
    }
  }
}

TEST(WelfareProperties, SurplusIsNonNegativeAtBlendedAndTieredPrices) {
  // Paper Fig. 1 premise: consumers keep a non-negative surplus under
  // both the blended status quo and any profit-maximized tiering (CED
  // surplus is strictly positive in closed form; the logit outside
  // option bounds surplus below by zero).
  for (const auto& c : random_cases(10)) {
    const auto market = build_market(c);
    EXPECT_GE(blended_welfare(market).consumer_surplus, 0.0) << describe(c);
    for (const auto strategy :
         {Strategy::Optimal, Strategy::ProfitWeighted, Strategy::CostWeighted}) {
      const auto result = run_strategy(market, strategy, 3);
      const auto report = welfare_at_prices(market, result.pricing.flow_prices);
      EXPECT_GE(report.consumer_surplus, 0.0)
          << describe(c) << " " << to_string(strategy);
    }
  }
}

TEST(WelfareProperties, WelfareIsExactlyProfitPlusSurplus) {
  // The accounting identity must hold to the last bit — welfare is
  // defined as the sum, and any drift means a component was computed
  // from different prices.
  for (const auto& c : random_cases(10)) {
    const auto market = build_market(c);
    const auto blended = blended_welfare(market);
    EXPECT_EQ(blended.welfare, blended.profit + blended.consumer_surplus)
        << describe(c);
    const auto result = run_strategy(market, Strategy::Optimal, 4);
    const auto tiered = welfare_at_prices(market, result.pricing.flow_prices);
    EXPECT_EQ(tiered.welfare, tiered.profit + tiered.consumer_surplus)
        << describe(c);
  }
}

TEST(WelfareProperties, SurplusIsMonotoneUnderPriceCuts) {
  // Cutting every price weakly raises consumer surplus in both demand
  // models (CED surplus falls in own price; logit surplus is a
  // decreasing function of each price through the log-sum-exp).
  for (const auto& c : random_cases(10)) {
    const auto market = build_market(c);
    double previous = -1.0;  // surplus is >= 0, so any first value passes
    for (const double factor : {1.0, 0.9, 0.7, 0.5}) {
      const std::vector<double> prices(market.size(),
                                       c.blended_price * factor);
      const auto report = welfare_at_prices(market, prices);
      EXPECT_GE(report.consumer_surplus, previous - kEps)
          << describe(c) << " at price factor " << factor;
      previous = report.consumer_surplus;
    }
  }
}

}  // namespace
}  // namespace manytiers::pricing
