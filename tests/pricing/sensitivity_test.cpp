#include "pricing/sensitivity.hpp"

#include <gtest/gtest.h>

#include "workload/generators.hpp"

namespace manytiers::pricing {
namespace {

struct Fixture {
  workload::FlowSet flows = workload::generate_eu_isp({.seed = 6, .n_flows = 80});
  std::unique_ptr<cost::CostModel> cost_model = cost::make_linear_cost(0.2);

  SensitivityInputs inputs(demand::DemandKind kind) const {
    SensitivityInputs in;
    in.flows = &flows;
    in.cost_model = cost_model.get();
    in.demand.kind = kind;
    in.max_bundles = 4;
    return in;
  }
};

TEST(SweepCaptures, MinNeverExceedsMaxAndCountsPoints) {
  Fixture fx;
  const std::vector<double> alphas{1.1, 2.0, 5.0};
  const auto result = sweep_alpha(
      fx.inputs(demand::DemandKind::ConstantElasticity), alphas);
  EXPECT_EQ(result.points, 3u);
  ASSERT_EQ(result.min_capture.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_LE(result.min_capture[b], result.max_capture[b] + 1e-12);
  }
}

TEST(SweepCaptures, SinglePointCollapsesMinAndMax) {
  Fixture fx;
  const std::vector<double> one{1.1};
  const auto result =
      sweep_alpha(fx.inputs(demand::DemandKind::ConstantElasticity), one);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_DOUBLE_EQ(result.min_capture[b], result.max_capture[b]);
  }
}

TEST(SweepAlpha, Figure14HeadlineHolds) {
  Fixture fx;
  const std::vector<double> alphas{1.05, 1.5, 3.0, 10.0};
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    const auto result = sweep_alpha(fx.inputs(kind), alphas);
    EXPECT_NEAR(result.min_capture[0], 0.0, 1e-6);  // one bundle: no gain
    EXPECT_GE(result.min_capture[3], 0.5);          // four bundles stay strong
  }
}

TEST(SweepBlendedPrice, CedCaptureIsExactlyInvariant) {
  Fixture fx;
  const std::vector<double> prices{5.0, 12.0, 20.0, 30.0};
  const auto result = sweep_blended_price(
      fx.inputs(demand::DemandKind::ConstantElasticity), prices);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(result.min_capture[b], result.max_capture[b], 1e-6);
  }
}

TEST(SweepNoPurchaseShare, Figure16Range) {
  Fixture fx;
  const std::vector<double> shares{0.05, 0.2, 0.5, 0.9};
  const auto result =
      sweep_no_purchase_share(fx.inputs(demand::DemandKind::Logit), shares);
  EXPECT_EQ(result.points, 4u);
  EXPECT_GE(result.min_capture[3], 0.5);
}

TEST(SweepNoPurchaseShare, RejectsCedDemand) {
  Fixture fx;
  const std::vector<double> shares{0.2};
  EXPECT_THROW(
      sweep_no_purchase_share(
          fx.inputs(demand::DemandKind::ConstantElasticity), shares),
      std::invalid_argument);
}

TEST(SweepCaptures, BitIdenticalAcrossThreadCounts) {
  // The parallel engine assigns each parameter point its own output slot
  // and reduces serially in parameter order, so the result must not
  // depend on the worker count — exact double equality, no tolerance.
  Fixture fx;
  const std::vector<double> alphas{1.05, 1.2, 1.7, 2.5, 4.0, 8.0};
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    auto inputs = fx.inputs(kind);
    inputs.threads = 1;
    const auto serial = sweep_alpha(inputs, alphas);
    for (const std::size_t threads : {2u, 4u, 7u}) {
      inputs.threads = threads;
      const auto parallel = sweep_alpha(inputs, alphas);
      EXPECT_EQ(parallel.min_capture, serial.min_capture)
          << "threads=" << threads;
      EXPECT_EQ(parallel.max_capture, serial.max_capture)
          << "threads=" << threads;
      EXPECT_EQ(parallel.points, serial.points);
    }
  }
}

TEST(SweepCaptures, PropagatesCalibrationErrorsFromWorkers) {
  const std::vector<double> params{1.0, 2.0, 3.0, 4.0};
  const auto boom = [](double value) -> Market {
    if (value > 2.5) throw std::runtime_error("bad parameter point");
    throw std::invalid_argument("also bad");
  };
  EXPECT_THROW(sweep_captures(params, boom, Strategy::ProfitWeighted, 3, 4),
               std::exception);
}

TEST(SweepCaptures, Validates) {
  Fixture fx;
  const std::vector<double> empty;
  EXPECT_THROW(
      sweep_alpha(fx.inputs(demand::DemandKind::ConstantElasticity), empty),
      std::invalid_argument);
  SensitivityInputs null_inputs;
  const std::vector<double> one{1.1};
  EXPECT_THROW(sweep_alpha(null_inputs, one), std::invalid_argument);
  auto zero_bundles = fx.inputs(demand::DemandKind::ConstantElasticity);
  zero_bundles.max_bundles = 0;
  EXPECT_THROW(sweep_alpha(zero_bundles, one), std::invalid_argument);
}

TEST(SweepCaptures, RejectsZeroMaxBundlesBeforeCalibrating) {
  // Regression for the silently-empty envelope: a direct call with
  // max_bundles == 0 must throw up front rather than hand downstream
  // reduction code empty min/max vectors to index into.
  const std::vector<double> params{1.0};
  const auto never = [](double) -> Market {
    throw std::logic_error("calibrate must not run");
  };
  EXPECT_THROW(sweep_captures(params, never, Strategy::Optimal, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::pricing
