#include "pricing/welfare.hpp"

#include <gtest/gtest.h>

#include "pricing/counterfactual.hpp"
#include "workload/generators.hpp"

namespace manytiers::pricing {
namespace {

Market eu_market(demand::DemandKind kind) {
  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 80});
  const auto cost = cost::make_linear_cost(0.2);
  DemandSpec spec;
  spec.kind = kind;
  return Market::calibrate(flows, spec, *cost, 20.0);
}

TEST(Welfare, Figure1TwoFlowNumbersAtMarketLevel) {
  // Rebuild paper Fig. 1 through the Market/welfare API: two CED flows,
  // alpha = 2, v = (1, 2), c = (1, 0.5).
  workload::FlowSet flows("fig1");
  workload::Flow f1;
  f1.demand_mbps = (1.0 / 1.2) * (1.0 / 1.2);  // q = (v/P0)^2 at P0 = 1.2
  f1.distance_miles = 2.0;
  flows.add(f1);
  workload::Flow f2;
  f2.demand_mbps = (2.0 / 1.2) * (2.0 / 1.2);
  f2.distance_miles = 1.0;
  flows.add(f2);
  DemandSpec spec;
  spec.alpha = 2.0;
  const auto cost = cost::make_linear_cost(0.0);
  const auto m = Market::calibrate(flows, spec, *cost, 1.2);
  // Calibration recovers the generating valuations and costs.
  EXPECT_NEAR(m.valuations()[0], 1.0, 1e-9);
  EXPECT_NEAR(m.valuations()[1], 2.0, 1e-9);
  EXPECT_NEAR(m.costs()[0], 1.0, 1e-9);
  EXPECT_NEAR(m.costs()[1], 0.5, 1e-9);
  const auto blended = blended_welfare(m);
  EXPECT_NEAR(blended.profit, 2.083, 1e-3);
  EXPECT_NEAR(blended.consumer_surplus, 4.167, 1e-3);
  const auto tiered = welfare_of(m, bundling::per_flow_bundles(2));
  EXPECT_NEAR(tiered.profit, 2.25, 1e-9);
  EXPECT_NEAR(tiered.consumer_surplus, 4.5, 1e-9);
  EXPECT_GT(tiered.welfare, blended.welfare);
}

class WelfareBothModels : public ::testing::TestWithParam<demand::DemandKind> {
};

TEST_P(WelfareBothModels, ComponentsAreConsistent) {
  const auto m = eu_market(GetParam());
  const auto report = blended_welfare(m);
  EXPECT_GT(report.profit, 0.0);
  EXPECT_GT(report.consumer_surplus, 0.0);
  EXPECT_NEAR(report.welfare, report.profit + report.consumer_surplus,
              1e-9 * report.welfare);
  EXPECT_NEAR(report.profit, blended_profit(m), 1e-9 * report.profit);
}

TEST_P(WelfareBothModels, TieringRaisesWelfareOnTheEuIspMarket) {
  // Fig. 1's welfare claim at dataset scale: optimal tiers raise profit
  // AND total welfare relative to the blended status quo.
  const auto m = eu_market(GetParam());
  const auto blended = blended_welfare(m);
  const auto res = run_strategy(m, Strategy::Optimal, 4);
  const auto tiered = welfare_at_prices(m, res.pricing.flow_prices);
  EXPECT_GT(tiered.profit, blended.profit);
  EXPECT_GT(tiered.welfare, blended.welfare);
}

TEST_P(WelfareBothModels, WelfareAtPricesValidates) {
  const auto m = eu_market(GetParam());
  EXPECT_THROW(welfare_at_prices(m, std::vector<double>{1.0}),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, WelfareBothModels,
    ::testing::Values(demand::DemandKind::ConstantElasticity,
                      demand::DemandKind::Logit),
    [](const auto& info) {
      return info.param == demand::DemandKind::ConstantElasticity ? "Ced"
                                                                  : "Logit";
    });

TEST(Welfare, CedSurplusFormula) {
  const demand::CedModel model(2.0);
  // v = 1, p = 2: surplus = v^2 p^-1 / 1 = 0.5.
  EXPECT_NEAR(model.consumer_surplus(1.0, 2.0), 0.5, 1e-12);
  // Surplus falls with price.
  EXPECT_GT(model.consumer_surplus(1.0, 1.0),
            model.consumer_surplus(1.0, 3.0));
  EXPECT_THROW(model.consumer_surplus(0.0, 1.0), std::invalid_argument);
}

TEST(Welfare, LogitSurplusProperties) {
  const demand::LogitModel model(1.0, 100.0);
  const std::vector<double> v{2.0, 1.0};
  const std::vector<double> cheap{0.5, 0.5};
  const std::vector<double> dear{3.0, 3.0};
  // Surplus is positive (outside option guarantees >= 0) and decreasing
  // in prices.
  EXPECT_GT(model.consumer_surplus(v, cheap), model.consumer_surplus(v, dear));
  EXPECT_GE(model.consumer_surplus(v, dear), 0.0);
  // With one dominant cheap flow, surplus ~ K * (v - p).
  const std::vector<double> v1{10.0};
  const std::vector<double> p1{1.0};
  EXPECT_NEAR(model.consumer_surplus(v1, p1), 100.0 * 9.0, 1.0);
}

}  // namespace
}  // namespace manytiers::pricing
