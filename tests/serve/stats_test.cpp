// The v1.2 `stats` wire query: full-registry snapshots with derived
// percentiles over the never-shed admin path. Pins the wire round-trip
// (both directions, byte-stable), the live-server response contents,
// and the two moments the query exists for — answering during a drain
// and answering while the admission machinery is shedding work.
#include "serve/server.hpp"

#include <unistd.h>

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "obs/registry.hpp"
#include "serve/client.hpp"
#include "serve_test_util.hpp"

namespace manytiers::serve {
namespace {

using testing::temp_socket_path;
using testing::tiny_grid;

Request price_request(std::uint64_t id) {
  Request request;
  request.id = id;
  request.kind = QueryKind::Price;
  request.market = "EU ISP/ced/linear";
  request.strategy = "Profit-weighted";
  request.q = 50.0;
  request.d = 100.0;
  return request;
}

Request stats_request(std::uint64_t id = 7) {
  Request request;
  request.id = id;
  request.kind = QueryKind::Stats;
  return request;
}

std::unique_ptr<Server> make_server(const std::string& socket_path,
                                    ServerOptions options) {
  options.unix_path = socket_path;
  auto server = std::make_unique<Server>(tiny_grid(), std::move(options));
  server->start();
  return server;
}

TEST(StatsWire, RequestRoundTrip) {
  EXPECT_EQ(to_string(QueryKind::Stats), "stats");
  EXPECT_EQ(parse_query_kind("stats"), QueryKind::Stats);
  const Request parsed = parse_request(serialize_request(stats_request(31)));
  EXPECT_EQ(parsed.kind, QueryKind::Stats);
  EXPECT_EQ(parsed.id, 31u);
}

TEST(StatsWire, ResponseRoundTripPreservesEveryField) {
  Response response;
  response.id = 9;
  response.ok = true;
  response.kind = QueryKind::Stats;
  response.epoch = 4;
  response.version = "1.2";
  response.t_us = 1700000000000000ull;
  response.stats_pid = 4242;
  response.state = "ready";
  response.active_connections = 3;
  response.inflight = 1;
  response.shed = 2;
  response.markets = 1;
  response.stats_counters = {{"serve.requests", 17},
                             {"serve.requests.price", 12}};
  response.stats_gauges = {{"serve.inflight", -1}};
  StatsHist hist;
  hist.name = "serve.latency_us.all";
  hist.count = 3;
  hist.sum = 96.0;
  hist.p50 = 16.0;
  hist.p99 = 64.0;
  hist.p999 = 64.0;
  hist.buckets = {{4, 2}, {6, 1}};
  response.stats_hists = {hist};

  const std::string payload = serialize_response(response);
  const Response parsed = parse_response(payload);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.kind, QueryKind::Stats);
  EXPECT_EQ(parsed.id, 9u);
  EXPECT_EQ(parsed.epoch, 4u);
  EXPECT_EQ(parsed.version, "1.2");
  EXPECT_EQ(parsed.t_us, 1700000000000000ull);
  EXPECT_EQ(parsed.stats_pid, 4242);
  EXPECT_EQ(parsed.state, "ready");
  EXPECT_EQ(parsed.active_connections, 3u);
  EXPECT_EQ(parsed.inflight, 1u);
  EXPECT_EQ(parsed.shed, 2u);
  EXPECT_EQ(parsed.markets, 1u);
  EXPECT_EQ(parsed.stats_counters, response.stats_counters);
  EXPECT_EQ(parsed.stats_gauges, response.stats_gauges);
  ASSERT_EQ(parsed.stats_hists.size(), 1u);
  EXPECT_EQ(parsed.stats_hists[0].name, hist.name);
  EXPECT_EQ(parsed.stats_hists[0].count, hist.count);
  EXPECT_DOUBLE_EQ(parsed.stats_hists[0].sum, hist.sum);
  EXPECT_DOUBLE_EQ(parsed.stats_hists[0].p50, hist.p50);
  EXPECT_DOUBLE_EQ(parsed.stats_hists[0].p99, hist.p99);
  EXPECT_DOUBLE_EQ(parsed.stats_hists[0].p999, hist.p999);
  EXPECT_EQ(parsed.stats_hists[0].buckets, hist.buckets);
  // Byte-stable: re-serializing the parse reproduces the payload.
  EXPECT_EQ(serialize_response(parsed), payload);
}

TEST(Stats, ReturnsRegistrySnapshotWithDerivedPercentiles) {
  obs::ScopedEnable metrics_on;
  const std::string path = temp_socket_path("stats");
  auto server = make_server(path, ServerOptions{});
  Client client = Client::connect_unix(path);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client.call(price_request(i)).ok);
  }

  const Response stats = client.call(stats_request());
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_EQ(stats.kind, QueryKind::Stats);
  EXPECT_EQ(stats.version, kProtocolVersion);
  EXPECT_EQ(stats.state, "ready");  // the health superset still reads
  EXPECT_EQ(stats.markets, 1u);
  EXPECT_GT(stats.t_us, 0u);
  EXPECT_EQ(stats.stats_pid, static_cast<std::int64_t>(::getpid()));

  const auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : stats.stats_counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_GE(counter("serve.requests"), 5u);
  EXPECT_GE(counter("serve.requests.price"), 5u);

  const StatsHist* all = nullptr;
  for (const auto& h : stats.stats_hists) {
    if (h.name == "serve.latency_us.all") all = &h;
  }
  ASSERT_NE(all, nullptr) << "combined latency histogram must be served";
  EXPECT_GE(all->count, 5u);
  EXPECT_LE(all->p50, all->p99);
  EXPECT_LE(all->p99, all->p999);
  // The served percentiles are exactly the ones any client derives from
  // the served buckets — no privileged server-side math.
  obs::HistogramSnapshot from_wire;
  from_wire.count = all->count;
  from_wire.sum = all->sum;
  for (const auto& [b, n] : all->buckets) {
    from_wire.buckets.emplace_back(static_cast<std::size_t>(b), n);
  }
  EXPECT_DOUBLE_EQ(all->p50, obs::histogram_percentile(from_wire, 0.50));
  EXPECT_DOUBLE_EQ(all->p99, obs::histogram_percentile(from_wire, 0.99));
  EXPECT_DOUBLE_EQ(all->p999, obs::histogram_percentile(from_wire, 0.999));
  server->stop();
}

TEST(Stats, AnswersOnFreshConnectionDuringDrain) {
  obs::ScopedEnable metrics_on;
  const std::string path = temp_socket_path("stats_drain");
  auto server = make_server(path, ServerOptions{});
  server->drain();  // no live connections: returns immediately

  // Work requests are refused with code "draining"...
  {
    Client late = Client::connect_unix(path);
    late.set_timeout_ms(5000);
    const Response refusal = late.call(price_request(1));
    EXPECT_FALSE(refusal.ok);
    EXPECT_EQ(refusal.code, kCodeDraining);
  }
  // ...but stats, like health, still answers and reports the state.
  {
    Client probe = Client::connect_unix(path);
    probe.set_timeout_ms(5000);
    const Response stats = probe.call(stats_request());
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_EQ(stats.kind, QueryKind::Stats);
    EXPECT_EQ(stats.state, "draining");
    EXPECT_FALSE(stats.stats_counters.empty());
  }
  server->stop();
}

TEST(Stats, NeverShedWhileOverloaded) {
  obs::ScopedEnable metrics_on;
  const std::string path = temp_socket_path("stats_ovl");
  ServerOptions options;
  options.shed_p99_us = 0.001;  // below any real latency: sheds once primed
  auto server = make_server(path, options);

  Client client = Client::connect_unix(path);
  std::size_t shed = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    if (!client.call(price_request(i + 1)).ok) ++shed;
  }
  ASSERT_GE(shed, 1u) << "p99 threshold of 1ns must trip within 400 calls";

  // Every stats poll during the storm must answer, and the registry it
  // carries must show the shedding it survived.
  for (std::uint64_t i = 0; i < 5; ++i) {
    const Response stats = client.call(stats_request(1000 + i));
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_EQ(stats.state, "overloaded");
  }
  const Response stats = client.call(stats_request());
  ASSERT_TRUE(stats.ok);
  std::uint64_t overloaded = 0;
  for (const auto& [n, v] : stats.stats_counters) {
    if (n == "serve.shed.overloaded") overloaded = v;
  }
  EXPECT_GE(overloaded, 1u);
  server->stop();
}

}  // namespace
}  // namespace manytiers::serve
