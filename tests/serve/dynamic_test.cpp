#include "serve/dynamic.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "driver/grid.hpp"
#include "netdyn/update.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"

namespace manytiers::serve {
namespace {

driver::ExperimentGrid small_grid() {
  driver::ExperimentGrid grid = driver::named_grid("smoke");
  grid.base.n_flows = 30;
  return grid;
}

// Deep equality of everything a snapshot can ever answer with — exact
// doubles throughout, which is the byte-identity claim (every response
// field is emitted with %.17g, so equal doubles mean equal bytes).
void expect_snapshots_identical(const Snapshot& got, const Snapshot& want) {
  ASSERT_EQ(got.markets.size(), want.markets.size());
  EXPECT_EQ(got.epoch, want.epoch);
  for (std::size_t m = 0; m < got.markets.size(); ++m) {
    const MarketEntry& g = *got.markets[m];
    const MarketEntry& w = *want.markets[m];
    ASSERT_EQ(g.key, w.key) << m;
    const auto& grel = g.market.relative_costs();
    const auto& wrel = w.market.relative_costs();
    ASSERT_EQ(grel.size(), wrel.size()) << g.key;
    for (std::size_t i = 0; i < grel.size(); ++i) {
      ASSERT_EQ(grel[i], wrel[i]) << g.key << " rel " << i;
    }
    ASSERT_EQ(g.schedules.size(), w.schedules.size()) << g.key;
    for (std::size_t s = 0; s < g.schedules.size(); ++s) {
      ASSERT_EQ(g.schedules[s].size(), w.schedules[s].size());
      for (std::size_t b = 0; b < g.schedules[s].size(); ++b) {
        const Schedule& gs = g.schedules[s][b];
        const Schedule& ws = w.schedules[s][b];
        ASSERT_EQ(gs.capture, ws.capture) << g.key << " s" << s << " b" << b;
        ASSERT_EQ(gs.tier_of_flow, ws.tier_of_flow) << g.key;
        ASSERT_EQ(gs.tiers.size(), ws.tiers.size()) << g.key;
        for (std::size_t t = 0; t < gs.tiers.size(); ++t) {
          ASSERT_EQ(gs.tiers[t].price, ws.tiers[t].price) << g.key;
          ASSERT_EQ(gs.tiers[t].rel_cost_lo, ws.tiers[t].rel_cost_lo);
          ASSERT_EQ(gs.tiers[t].rel_cost_hi, ws.tiers[t].rel_cost_hi);
          ASSERT_EQ(gs.tiers[t].n_flows, ws.tiers[t].n_flows);
          ASSERT_EQ(gs.tiers[t].demand_mbps, ws.tiers[t].demand_mbps);
        }
      }
    }
  }
}

TEST(DynamicState, DerivedSnapshotEqualsFullRebuildAndSharesCleanEntries) {
  const auto grid = small_grid();
  SnapshotBuildOptions build;
  build.threads = 2;
  build.epoch = 1;
  const auto base = build_snapshot(grid, build);

  DynamicState state(grid);
  const auto batch = netdyn::parse_updates("down,Chicago,New York");
  const auto derived = state.apply(*base, batch, 2, 2);

  // smoke datasets are {EU ISP, Internet2, CDN} x 2 demand x 1 cost:
  // markets 2 and 3 are the Internet2 block.
  const std::size_t per_ds =
      grid.demand_kinds.size() * grid.cost_kinds.size();
  EXPECT_EQ(derived.recalibrated, per_ds);
  ASSERT_EQ(derived.snapshot->markets.size(), 3 * per_ds);
  for (std::size_t m = 0; m < derived.snapshot->markets.size(); ++m) {
    const bool internet2_block = m >= per_ds && m < 2 * per_ds;
    if (internet2_block) {
      EXPECT_NE(derived.snapshot->markets[m], base->markets[m]) << m;
    } else {
      // Structural sharing: the exact same entry, not a rebuilt copy.
      EXPECT_EQ(derived.snapshot->markets[m], base->markets[m]) << m;
    }
  }

  // Byte-identity against the recompute-everything reference.
  const auto reference = state.scratch_snapshot(2, 2);
  expect_snapshots_identical(*derived.snapshot, *reference);
}

TEST(DynamicState, DistanceNeutralBatchSharesEverything) {
  const auto grid = small_grid();
  const auto base = build_snapshot(grid, {.threads = 2, .epoch = 1});
  DynamicState state(grid);
  const auto first = state.apply(
      *base, netdyn::parse_updates("w,Denver,Kansas City,2500"), 2, 2);
  // Same reweigh again: epoch moves, zero distance change, zero rebuild.
  const auto second = state.apply(
      *first.snapshot, netdyn::parse_updates("w,Denver,Kansas City,2500"), 3,
      2);
  EXPECT_EQ(second.recalibrated, 0u);
  EXPECT_EQ(second.snapshot->epoch, 3u);
  for (std::size_t m = 0; m < second.snapshot->markets.size(); ++m) {
    EXPECT_EQ(second.snapshot->markets[m], first.snapshot->markets[m]) << m;
  }
}

TEST(DynamicState, InvalidBatchThrowsWithoutAdvancing) {
  const auto grid = small_grid();
  const auto base = build_snapshot(grid, {.threads = 2, .epoch = 1});
  DynamicState state(grid);
  EXPECT_THROW(state.apply(*base, netdyn::parse_updates("down,Nowhere,Denver"),
                           2, 2),
               std::invalid_argument);
  EXPECT_EQ(state.network().epoch(), 0u);
  // The network is untouched, so a valid batch still applies cleanly.
  const auto ok = state.apply(
      *base, netdyn::parse_updates("down,Chicago,New York"), 2, 2);
  EXPECT_EQ(ok.snapshot->epoch, 2u);
  expect_snapshots_identical(*ok.snapshot, *state.scratch_snapshot(2, 2));
}

// The daemon-level requote path: a link failure shipped through a
// reload request republishes a bumped-epoch snapshot whose dirty
// markets repriced — and the full query surface keeps answering
// throughout.
TEST(ServerDynamicReload, UpdatesReloadRepublishesIncrementally) {
  const std::string socket =
      "/tmp/mt_dyn_test_" + std::to_string(::getpid()) + ".sock";
  Server server(small_grid(), {.unix_path = socket, .threads = 2});
  server.start();
  Client client = Client::connect_unix(socket);

  Request schedule;
  schedule.id = 1;
  schedule.kind = QueryKind::Schedule;
  schedule.market = "Internet2/ced/linear";
  schedule.strategy = "Optimal";
  const Response before = client.call(schedule);
  ASSERT_TRUE(before.ok);
  EXPECT_EQ(before.epoch, 1u);

  Request euisp = schedule;
  euisp.id = 2;
  euisp.market = "EU ISP/ced/linear";
  const Response eu_before = client.call(euisp);
  ASSERT_TRUE(eu_before.ok);

  // Fail a backbone link via the incremental reload path.
  Request reload;
  reload.id = 3;
  reload.kind = QueryKind::Reload;
  reload.updates = "down,Chicago,New York";
  const Response reloaded = client.call(reload);
  ASSERT_TRUE(reloaded.ok) << reloaded.error;
  EXPECT_EQ(reloaded.epoch, 2u);
  EXPECT_EQ(reloaded.markets, 6u);
  EXPECT_EQ(reloaded.recalibrated, 2u);  // the Internet2 demand pair

  // The Internet2 market repriced; the EU ISP market is the shared
  // entry — same capture bytes, new epoch tag.
  const Response after = client.call(schedule);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.epoch, 2u);
  const Response eu_after = client.call(euisp);
  ASSERT_TRUE(eu_after.ok);
  EXPECT_EQ(eu_after.capture_text, eu_before.capture_text);

  // Invalid combinations come back as structured errors, epoch pinned.
  Request bad = reload;
  bad.id = 4;
  bad.seed = 99;
  const Response rejected = client.call(bad);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(server.epoch(), 2u);

  Request unknown = reload;
  unknown.id = 5;
  unknown.updates = "down,Nowhere,Denver";
  const Response unresolved = client.call(unknown);
  EXPECT_FALSE(unresolved.ok);
  EXPECT_EQ(server.epoch(), 2u);

  // An overridden full reload parks the dynamic path until a plain
  // reload returns to the base flows.
  Request override_reload;
  override_reload.id = 6;
  override_reload.kind = QueryKind::Reload;
  override_reload.seed = 99;
  ASSERT_TRUE(client.call(override_reload).ok);
  Request dyn_again = reload;
  dyn_again.id = 7;
  const Response parked = client.call(dyn_again);
  EXPECT_FALSE(parked.ok);

  Request plain;
  plain.id = 8;
  plain.kind = QueryKind::Reload;
  const Response reset = client.call(plain);
  ASSERT_TRUE(reset.ok);
  EXPECT_EQ(reset.recalibrated, reset.markets);  // full rebuild
  Request dyn_fresh = reload;
  dyn_fresh.id = 9;
  const Response resumed = client.call(dyn_fresh);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.recalibrated, 2u);

  server.stop();
}

}  // namespace
}  // namespace manytiers::serve
