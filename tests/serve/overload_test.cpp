// In-process tests of the overload-hardening machinery: admission
// control (connection cap, in-flight budget, p99 shedder), the request
// deadline, the read limits (idle reap, slow-loris cutoff), graceful
// drain semantics, and the health query's lifecycle states. Each test
// builds its own Server so the knobs can differ; the shared fixture
// grid calibrates in well under a millisecond.
//
// The chaos harness (chaos_test.cpp) re-runs the same invariants
// against the real binary over process boundaries; these tests pin the
// mechanisms deterministically where timing can be controlled exactly.
#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.hpp"
#include "serve/fault_client.hpp"
#include "serve_test_util.hpp"

namespace manytiers::serve {
namespace {

using testing::temp_socket_path;
using testing::tiny_grid;

Request price_request(std::uint64_t id) {
  Request request;
  request.id = id;
  request.kind = QueryKind::Price;
  request.market = "EU ISP/ced/linear";
  request.strategy = "Profit-weighted";
  request.q = 50.0;
  request.d = 100.0;
  return request;
}

Request health_request(std::uint64_t id = 99) {
  Request request;
  request.id = id;
  request.kind = QueryKind::Health;
  return request;
}

std::unique_ptr<Server> make_server(const std::string& socket_path,
                                    ServerOptions options) {
  options.unix_path = socket_path;
  auto server = std::make_unique<Server>(tiny_grid(), std::move(options));
  server->start();
  return server;
}

TEST(Health, ReportsReadyWithGauges) {
  const std::string path = temp_socket_path("health");
  auto server = make_server(path, ServerOptions{});
  Client client = Client::connect_unix(path);
  const Response response = client.call(health_request());
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.kind, QueryKind::Health);
  EXPECT_EQ(response.state, "ready");
  EXPECT_EQ(response.active_connections, 1u);  // us
  EXPECT_EQ(response.shed, 0u);
  EXPECT_EQ(response.markets, 1u);
  server->stop();
}

TEST(AdmissionControl, ConnectionCapRefusesWithTypedError) {
  const std::string path = temp_socket_path("conncap");
  ServerOptions options;
  options.max_connections = 2;
  auto server = make_server(path, options);

  // Fill the cap with two idle-but-live connections.
  Client a = Client::connect_unix(path);
  Client b = Client::connect_unix(path);
  ASSERT_TRUE(a.call(price_request(1)).ok);
  ASSERT_TRUE(b.call(price_request(2)).ok);

  // The third connection is accepted, answered with one typed
  // "overloaded" error frame, and closed — not silently reset.
  Client c = Client::connect_unix(path);
  c.set_timeout_ms(5000);
  std::string payload;
  // The refusal frame has id 0 (no request was read).
  FrameReader reader(c.fd());
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  const Response refusal = parse_response(payload);
  EXPECT_FALSE(refusal.ok);
  EXPECT_EQ(refusal.code, kCodeOverloaded);
  // ... and then a clean EOF.
  EXPECT_EQ(reader.next(payload), FrameReader::Status::Eof);

  // Admitted connections are unaffected, and the shed shows up in the
  // health gauges.
  const Response health = a.call(health_request());
  ASSERT_TRUE(health.ok);
  EXPECT_GE(health.shed, 1u);
  ASSERT_TRUE(b.call(price_request(3)).ok);
  server->stop();
}

TEST(AdmissionControl, DeadlineShedsStaleBacklog) {
  const std::string path = temp_socket_path("deadline");
  ServerOptions options;
  options.request_deadline_ms = 1;
  auto server = make_server(path, options);

  // Pipeline a deep backlog in one burst: every frame in the flood
  // shares its recv burst's arrival timestamp, and the handler works
  // through them at a few microseconds each, so frames near the tail
  // are guaranteed to have aged past the 1 ms deadline before their
  // turn comes. The server must answer ALL of them — accepted ones
  // correctly, stale ones with code "deadline".
  constexpr std::size_t kFlood = 5000;
  Client client = Client::connect_unix(path);
  std::string burst;
  for (std::size_t i = 0; i < kFlood; ++i) {
    append_frame(burst, serialize_request(price_request(i + 1)));
  }
  // Write from a separate thread while reading responses here: the
  // burst plus its responses exceed the kernel socket buffers, so a
  // write-then-read client would deadlock against the server's own
  // blocked response writes.
  std::thread writer(
      [&client, &burst] { write_all(client.fd(), burst); });

  std::size_t ok_count = 0, deadline_count = 0;
  for (std::size_t i = 0; i < kFlood; ++i) {
    const Response response = client.recv();
    if (response.ok) {
      ++ok_count;
      EXPECT_GT(response.price, 0.0);
    } else {
      EXPECT_EQ(response.code, kCodeDeadline) << response.error;
      ++deadline_count;
    }
  }
  writer.join();
  EXPECT_EQ(ok_count + deadline_count, kFlood);
  EXPECT_GE(deadline_count, 1u) << "5000 pipelined frames at ~µs each must "
                                   "blow a 1 ms deadline somewhere";
  server->stop();
}

TEST(AdmissionControl, TinyP99ThresholdShedsUnderBurst) {
  const std::string path = temp_socket_path("p99shed");
  ServerOptions options;
  options.shed_p99_us = 0.001;  // below any real latency: sheds once primed
  auto server = make_server(path, options);

  Client client = Client::connect_unix(path);
  // The tail tracker recomputes every 128 samples; prime it past one
  // recompute, then expect shed responses.
  std::size_t shed = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    const Response response = client.call(price_request(i + 1));
    if (!response.ok) {
      EXPECT_EQ(response.code, kCodeOverloaded);
      ++shed;
    }
  }
  EXPECT_GE(shed, 1u) << "p99 threshold of 1ns must trip within 400 calls";
  // Health reflects the overloaded state while the estimate is high.
  const Response health = client.call(health_request());
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.state, "overloaded");
  server->stop();
}

TEST(ReadLimits, IdleConnectionIsReaped) {
  const std::string path = temp_socket_path("idle");
  ServerOptions options;
  options.idle_timeout_ms = 100;
  auto server = make_server(path, options);

  FaultClient silent = FaultClient::connect_unix(path);
  silent.go_silent();
  // The server must reap the idle connection within a few poll ticks.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->active_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->active_connections(), 0u);
  // And an active client on the same server must be unaffected.
  Client client = Client::connect_unix(path);
  EXPECT_TRUE(client.call(price_request(1)).ok);
  server->stop();
}

TEST(ReadLimits, SlowLorisWriterIsCutOff) {
  const std::string path = temp_socket_path("loris");
  ServerOptions options;
  options.idle_timeout_ms = 10000;  // generous: the frame limit must fire
  options.frame_timeout_ms = 150;
  auto server = make_server(path, options);

  FaultClient loris = FaultClient::connect_unix(path);
  // Dribble a 6-byte frame 1 byte per 50 ms: finishing takes ~250 ms,
  // so the 150 ms frame window must cut the connection first. (The
  // payload need not parse — the cutoff fires before any parse.)
  const bool finished = loris.dribble("xy", 1, 50);
  // Either the send failed mid-dribble (server reset us) or the read
  // side reports EOF/reset with no answer.
  if (finished) {
    EXPECT_FALSE(loris.try_read_frame(2000).has_value());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->active_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server->active_connections(), 0u);
  Client client = Client::connect_unix(path);
  EXPECT_TRUE(client.call(price_request(2)).ok);
  server->stop();
}

TEST(Drain, InFlightPipelinedFramesCompleteByteIdentically) {
  const std::string path = temp_socket_path("drain_inflight");
  auto server = make_server(path, ServerOptions{});

  // Control answers from a non-draining exchange.
  std::vector<std::string> expected;
  {
    Client control = Client::connect_unix(path);
    for (std::size_t i = 0; i < 50; ++i) {
      expected.push_back(
          control.call_raw(serialize_request(price_request(i + 1))));
    }
  }

  // Pipeline the same 50 requests, then drain while they are in flight.
  // One synchronous round-trip first: connect() succeeding only proves
  // the kernel queued us in the listen backlog, and a connection the
  // server has not *accepted* yet is fair game for a typed draining
  // refusal.
  Client client = Client::connect_unix(path);
  ASSERT_TRUE(client.call(price_request(999)).ok);
  std::string burst;
  for (std::size_t i = 0; i < 50; ++i) {
    append_frame(burst, serialize_request(price_request(i + 1)));
  }
  write_all(client.fd(), burst);
  std::thread drainer([&] { server->drain(); });

  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(client.recv_raw(), expected[i]) << "response " << i;
  }
  drainer.join();
  EXPECT_TRUE(server->draining());
  server->stop();
}

TEST(Drain, NewConnectionsGetTypedRefusalButHealthAnswers) {
  const std::string path = temp_socket_path("drain_refuse");
  auto server = make_server(path, ServerOptions{});
  server->drain();  // no live connections: returns immediately

  // A work request on a fresh connection gets code "draining".
  {
    Client late = Client::connect_unix(path);
    late.set_timeout_ms(5000);
    const Response refusal = late.call(price_request(1));
    EXPECT_FALSE(refusal.ok);
    EXPECT_EQ(refusal.code, kCodeDraining);
  }
  // A health probe on a fresh connection still reports state.
  {
    Client probe = Client::connect_unix(path);
    probe.set_timeout_ms(5000);
    const Response health = probe.call(health_request());
    ASSERT_TRUE(health.ok) << health.error;
    EXPECT_EQ(health.state, "draining");
  }
  server->stop();
}

TEST(Drain, TimeoutHardClosesStalledConnection) {
  const std::string path = temp_socket_path("drain_stall");
  ServerOptions options;
  options.drain_timeout_ms = 300;
  auto server = make_server(path, options);

  // A connected peer that never sends anything: its handler blocks in
  // recv. SHUT_RD wakes it with EOF immediately, so to actually stall
  // the drain we need a handler mid-send to a full socket — hard to
  // arrange in-process. Instead, pin the simpler invariant: drain()
  // with an idle-but-open peer returns promptly (the EOF path) and
  // never exceeds the timeout by more than scheduling noise.
  FaultClient idle = FaultClient::connect_unix(path);
  const auto t0 = std::chrono::steady_clock::now();
  server->drain();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 5000) << "drain must terminate well within bounds";
  EXPECT_EQ(server->active_connections(), 0u);
  server->stop();
}

TEST(Drain, IsIdempotentAndConcurrent) {
  const std::string path = temp_socket_path("drain_idem");
  auto server = make_server(path, ServerOptions{});
  std::vector<std::thread> drainers;
  for (int i = 0; i < 4; ++i) {
    drainers.emplace_back([&] { server->drain(); });
  }
  for (auto& t : drainers) t.join();
  EXPECT_TRUE(server->draining());
  server->stop();
}

}  // namespace
}  // namespace manytiers::serve
