// End-to-end daemon lifecycle: spawn the real manytiers_serve binary,
// query every kind over its socket, SIGTERM it, and require a clean
// exit with the metrics sidecar flushed. Binary paths are injected at
// compile time (MANYTIERS_SERVE_BIN), same pattern as the orchestrator
// E2E suite.
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "obs/registry.hpp"
#include "orchestrator/process.hpp"
#include "serve/client.hpp"
#include "serve_test_util.hpp"

namespace manytiers::serve {
namespace {

using orchestrator::ExitStatus;
using testing::temp_socket_path;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ExitStatus wait_for_exit(pid_t pid, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (const auto status = orchestrator::try_wait(pid)) return *status;
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "daemon did not exit in " << timeout_ms << " ms";
      return orchestrator::kill_and_reap(pid);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST(ServeE2E, DaemonAnswersAllKindsAndShutsDownCleanOnSigterm) {
  const std::string socket_path = temp_socket_path("e2e");
  const std::string metrics_path = socket_path + ".metrics";
  const std::string log_path = socket_path + ".log";

  orchestrator::SpawnSpec spec;
  spec.argv = {MANYTIERS_SERVE_BIN, "--grid",    "smoke",
               "--socket",          socket_path, "--metrics",
               metrics_path};
  spec.log_path = log_path;
  const pid_t pid = orchestrator::spawn_process(spec);

  {
    // Calibration happens before the socket binds; the retry connect IS
    // the readiness wait.
    Client client = Client::connect_unix_retry(socket_path, 30000);

    Request schedule;
    schedule.id = 1;
    schedule.kind = QueryKind::Schedule;
    schedule.market = "EU ISP/ced/linear";
    schedule.strategy = "Optimal";
    const Response schedule_response = client.call(schedule);
    ASSERT_TRUE(schedule_response.ok) << schedule_response.error;
    EXPECT_EQ(schedule_response.tiers.size(), 4u);  // smoke max_bundles

    Request price = schedule;
    price.id = 2;
    price.kind = QueryKind::Price;
    price.q = 42.0;
    price.d = 250.0;
    const Response price_response = client.call(price);
    ASSERT_TRUE(price_response.ok) << price_response.error;
    EXPECT_GT(price_response.price, 0.0);

    Request requote = schedule;
    requote.id = 3;
    requote.kind = QueryKind::Requote;
    requote.flow = 5;
    const Response requote_response = client.call(requote);
    ASSERT_TRUE(requote_response.ok) << requote_response.error;

    Request reload;
    reload.id = 4;
    reload.kind = QueryKind::Reload;
    reload.seed = 77;
    const Response reload_response = client.call(reload);
    ASSERT_TRUE(reload_response.ok) << reload_response.error;
    EXPECT_EQ(reload_response.epoch, 2u);

    // Post-reload queries answer from the new epoch.
    const Response after = client.call(schedule);
    ASSERT_TRUE(after.ok) << after.error;
    EXPECT_EQ(after.epoch, 2u);
  }

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  const ExitStatus status = wait_for_exit(pid, 30000);
  EXPECT_FALSE(status.signaled) << "terminated by signal " << status.signal;
  EXPECT_EQ(status.code, 0) << slurp(log_path);

  // Lifecycle lines made it to the log.
  const std::string log = slurp(log_path);
  EXPECT_NE(log.find("SERVE_JSON {\"event\":\"ready\""), std::string::npos)
      << log;
  EXPECT_NE(log.find("\"event\":\"shutdown\""), std::string::npos) << log;

  // The sidecar parses and counted our requests (5 queries + 1 reload
  // across the per-kind counters; serve.requests is the total).
  const obs::Snapshot metrics = obs::parse_snapshot(slurp(metrics_path));
  ASSERT_TRUE(metrics.counters.count("serve.requests"));
  EXPECT_GE(metrics.counters.at("serve.requests"), 5u);
  ASSERT_TRUE(metrics.counters.count("serve.reloads"));
  EXPECT_EQ(metrics.counters.at("serve.reloads"), 1u);
  EXPECT_EQ(metrics.counters.count("serve.errors"), 1u);
  EXPECT_EQ(metrics.counters.at("serve.errors"), 0u);
  ASSERT_TRUE(metrics.histograms.count("serve.latency_us.price"));
  EXPECT_GE(metrics.histograms.at("serve.latency_us.price").count, 1u);

  std::remove(metrics_path.c_str());
  std::remove(log_path.c_str());
}

TEST(ServeE2E, UsageErrorsExitTwo) {
  orchestrator::SpawnSpec spec;
  spec.argv = {MANYTIERS_SERVE_BIN, "--grid", "no-such-grid", "--socket",
               temp_socket_path("usage")};
  spec.log_path = "/dev/null";
  const pid_t pid = orchestrator::spawn_process(spec);
  const ExitStatus status = wait_for_exit(pid, 30000);
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 2);

  orchestrator::SpawnSpec no_socket;
  no_socket.argv = {MANYTIERS_SERVE_BIN};
  no_socket.log_path = "/dev/null";
  const pid_t pid2 = orchestrator::spawn_process(no_socket);
  const ExitStatus status2 = wait_for_exit(pid2, 30000);
  EXPECT_EQ(status2.code, 2);
}

TEST(ServeE2E, QuoteCliRoundTrips) {
  const std::string socket_path = temp_socket_path("quote_cli");
  const std::string log_path = socket_path + ".log";
  orchestrator::SpawnSpec daemon;
  daemon.argv = {MANYTIERS_SERVE_BIN, "--grid", "smoke", "--socket",
                 socket_path};
  daemon.log_path = log_path;
  const pid_t daemon_pid = orchestrator::spawn_process(daemon);

  const std::string quote_log = socket_path + ".quote.log";
  orchestrator::SpawnSpec quote;
  quote.argv = {MANYTIERS_QUOTE_BIN,
                "--socket",
                socket_path,
                "--retry-ms",
                "30000",
                "price",
                "--market",
                "EU ISP/ced/linear",
                "--strategy",
                "Optimal",
                "--q",
                "10",
                "--d",
                "100"};
  quote.log_path = quote_log;
  const ExitStatus quote_status =
      wait_for_exit(orchestrator::spawn_process(quote), 30000);
  EXPECT_EQ(quote_status.code, 0) << slurp(quote_log);
  const Response response = parse_response([&] {
    std::string text = slurp(quote_log);
    // The CLI prints exactly one line: the raw response payload.
    if (!text.empty() && text.back() == '\n') text.pop_back();
    return text;
  }());
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.kind, QueryKind::Price);

  ASSERT_EQ(::kill(daemon_pid, SIGTERM), 0);
  EXPECT_EQ(wait_for_exit(daemon_pid, 30000).code, 0);
  std::remove(log_path.c_str());
  std::remove(quote_log.c_str());
}

}  // namespace
}  // namespace manytiers::serve
