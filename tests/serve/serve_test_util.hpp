// Shared fixtures for the serve suite: a fast-to-calibrate grid and
// collision-free socket paths (sockaddr_un caps paths at ~108 bytes, so
// they live directly under /tmp rather than in deep build trees).
#pragma once

#include <unistd.h>

#include <atomic>
#include <string>

#include "driver/grid.hpp"

namespace manytiers::serve::testing {

// One market, one strategy, 24 flows: calibrates in well under a
// millisecond, so swap tests can reload dozens of times.
inline driver::ExperimentGrid tiny_grid() {
  driver::ExperimentGrid grid;
  grid.name = "serve-tiny";
  grid.datasets = {workload::DatasetKind::EuIsp};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity};
  grid.cost_kinds = {driver::CostKind::Linear};
  grid.strategies = {pricing::Strategy::ProfitWeighted};
  grid.max_bundles = 2;
  grid.base.n_flows = 24;
  return grid;
}

inline std::string temp_socket_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/mt_" + std::string(tag) + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter.fetch_add(1)) + ".sock";
}

}  // namespace manytiers::serve::testing
