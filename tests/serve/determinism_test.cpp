// One pricing truth: schedule responses replayed against the daemon
// must byte-match the batch driver's per-point capture records. The
// comparison is on raw %.17g tokens — the daemon's socket path and the
// batch pipeline must agree to the last bit, not to a tolerance.
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "driver/grid.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "gtest/gtest.h"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace manytiers::serve {
namespace {

using testing::temp_socket_path;

// Pull the raw capture-array tokens out of a BATCH_JSON per-point line:
//   {"type":"point","cell":"EU ISP/ced/linear/Optimal","point":0,
//    "capture":[0.84...,0.91...,...]}
std::vector<std::string> capture_tokens(std::string_view line) {
  const std::string_view key = "\"capture\":[";
  const std::size_t at = line.find(key);
  EXPECT_NE(at, std::string_view::npos) << line;
  std::string_view rest = line.substr(at + key.size());
  rest = rest.substr(0, rest.find(']'));
  std::vector<std::string> tokens;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    tokens.emplace_back(rest.substr(0, comma));
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return tokens;
}

// The capture token of one schedule response payload, raw.
std::string capture_token(std::string_view payload) {
  const std::string_view key = "\"capture\":";
  const std::size_t at = payload.find(key);
  EXPECT_NE(at, std::string_view::npos) << payload;
  std::string_view rest = payload.substr(at + key.size());
  return std::string(rest.substr(0, rest.find(',')));
}

TEST(Determinism, ServedSchedulesByteMatchBatchReport) {
  const auto grid = driver::smoke_grid();

  // The batch truth: one in-process run with per-point capture detail
  // (exactly what `manytiers_batch --grid smoke --per-point` emits).
  driver::RunOptions run_options;
  run_options.per_point = true;
  const driver::BatchReport report = driver::run_grid(grid, run_options);
  const std::string batch_text =
      driver::report_to_string(report, /*include_timing=*/false);

  // The served answers, over a real socket.
  const std::string path = temp_socket_path("determinism");
  ServerOptions options;
  options.unix_path = path;
  Server server(grid, options);
  server.start();
  Client client = Client::connect_unix(path);

  // Every cell of the grid: replay the (market, strategy) query log and
  // byte-compare the capture series, bundle count by bundle count.
  std::size_t cells_checked = 0;
  for (const auto& cell : driver::enumerate_cells(grid)) {
    const std::string cell_needle =
        "\"cell\":\"" + driver::cell_key(cell) + "\",\"point\":0";
    std::size_t line_start = batch_text.find(cell_needle);
    ASSERT_NE(line_start, std::string::npos) << cell_needle;
    line_start = batch_text.rfind('\n', line_start) + 1;
    const std::size_t line_end = batch_text.find('\n', line_start);
    const auto batch_tokens = capture_tokens(
        std::string_view(batch_text).substr(line_start, line_end - line_start));
    ASSERT_EQ(batch_tokens.size(), grid.max_bundles);

    for (std::size_t b = 1; b <= grid.max_bundles; ++b) {
      Request request;
      request.id = cells_checked * 100 + b;
      request.kind = QueryKind::Schedule;
      request.market = market_key(cell.dataset, cell.demand, cell.cost);
      request.strategy = std::string(pricing::to_string(cell.strategy));
      request.bundles = b;
      const std::string payload =
          client.call_raw(serialize_request(request));
      ASSERT_TRUE(parse_response(payload).ok) << payload;
      EXPECT_EQ(capture_token(payload), batch_tokens[b - 1])
          << driver::cell_key(cell) << " at " << b << " bundles";
    }
    ++cells_checked;
  }
  EXPECT_EQ(cells_checked,
            grid.datasets.size() * grid.demand_kinds.size() *
                grid.cost_kinds.size() * grid.strategies.size());
  server.stop();
}

// Replaying the same query twice (and across reconnects) returns
// byte-identical responses — the snapshot is immutable.
TEST(Determinism, RepeatedQueriesAreByteStable) {
  const std::string path = temp_socket_path("determinism_replay");
  ServerOptions options;
  options.unix_path = path;
  Server server(serve::testing::tiny_grid(), options);
  server.start();

  Request request;
  request.id = 1;
  request.kind = QueryKind::Price;
  request.market = "EU ISP/ced/linear";
  request.strategy = "Profit-weighted";
  request.q = 77.5;
  request.d = 312.0;
  const std::string wire = serialize_request(request);

  std::string first;
  {
    Client client = Client::connect_unix(path);
    first = client.call_raw(wire);
    EXPECT_EQ(client.call_raw(wire), first);
  }
  {
    Client reconnected = Client::connect_unix(path);
    EXPECT_EQ(reconnected.call_raw(wire), first);
  }
  server.stop();
}

}  // namespace
}  // namespace manytiers::serve
