// Protocol hardening against a live server: the malformed-frame corpus
// (truncated prefix, oversized length, zero length, garbage payload,
// bad query kind, mid-frame disconnect) must produce a structured error
// or a clean close — never a crash, a hang, or a sanitizer report — and
// the daemon must keep answering afterwards. Runs under the asan preset
// via the `serve` ctest label.
#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "serve/client.hpp"
#include "serve_test_util.hpp"

namespace manytiers::serve {
namespace {

using testing::temp_socket_path;
using testing::tiny_grid;

class ServerTest : public ::testing::Test {
 protected:
  // One server for the whole suite: every test must leave it answering.
  static void SetUpTestSuite() {
    socket_path_ = new std::string(temp_socket_path("server_test"));
    ServerOptions options;
    options.unix_path = *socket_path_;
    options.tcp_port = 0;  // kernel-assigned, exercises the TCP listener
    server_ = new Server(tiny_grid(), options);
    server_->start();
  }
  static void TearDownTestSuite() {
    server_->stop();
    delete server_;
    server_ = nullptr;
    delete socket_path_;
    socket_path_ = nullptr;
  }

  // A raw (non-Client) connection for sending malformed bytes.
  static int raw_connect() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path_->c_str(),
                socket_path_->size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
    return fd;
  }

  static Request schedule_request() {
    Request request;
    request.id = 1;
    request.kind = QueryKind::Schedule;
    request.market = "EU ISP/ced/linear";
    request.strategy = "Profit-weighted";
    return request;
  }

  // The liveness probe every corpus test ends with: a fresh connection
  // must still get a correct answer.
  static void expect_server_alive() {
    Client client = Client::connect_unix(*socket_path_);
    const Response response = client.call(schedule_request());
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.tiers.size(), 2u);
  }

  static Server* server_;
  static std::string* socket_path_;
};

Server* ServerTest::server_ = nullptr;
std::string* ServerTest::socket_path_ = nullptr;

TEST_F(ServerTest, AnswersEveryQueryKind) {
  Client client = Client::connect_unix(*socket_path_);

  Request price = schedule_request();
  price.kind = QueryKind::Price;
  price.q = 50.0;
  price.d = 100.0;
  const Response price_response = client.call(price);
  ASSERT_TRUE(price_response.ok) << price_response.error;
  EXPECT_EQ(price_response.epoch, server_->epoch());
  EXPECT_GT(price_response.price, 0.0);

  Request requote = schedule_request();
  requote.kind = QueryKind::Requote;
  requote.flow = 3;
  const Response requote_response = client.call(requote);
  ASSERT_TRUE(requote_response.ok) << requote_response.error;
  EXPECT_GT(requote_response.blended_price, 0.0);

  const Response schedule_response = client.call(schedule_request());
  ASSERT_TRUE(schedule_response.ok) << schedule_response.error;
  EXPECT_EQ(schedule_response.tiers.size(), 2u);
  EXPECT_FALSE(schedule_response.capture_text.empty());
}

TEST_F(ServerTest, TcpListenerAnswersToo) {
  ASSERT_GT(server_->tcp_port(), 0);
  Client client = Client::connect_tcp("127.0.0.1", server_->tcp_port());
  const Response response = client.call(schedule_request());
  ASSERT_TRUE(response.ok) << response.error;
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  Client client = Client::connect_unix(*socket_path_);
  constexpr std::uint64_t kBatch = 64;
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    Request request = schedule_request();
    request.id = 100 + i;
    request.kind = QueryKind::Price;
    request.q = 10.0 + double(i);
    request.d = 50.0;
    client.send(request);
  }
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    const Response response = client.recv();
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.id, 100 + i);
  }
}

TEST_F(ServerTest, StructuredErrorsKeepTheConnectionUsable) {
  Client client = Client::connect_unix(*socket_path_);

  Request bad_market = schedule_request();
  bad_market.market = "no/such/market";
  Response response = client.call(bad_market);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown market"), std::string::npos);

  Request bad_strategy = schedule_request();
  bad_strategy.strategy = "Wishful thinking";
  response = client.call(bad_strategy);
  EXPECT_FALSE(response.ok);

  Request unserved = schedule_request();
  unserved.strategy = "Optimal";  // real strategy, not in the tiny grid
  response = client.call(unserved);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("not served"), std::string::npos);

  Request too_many = schedule_request();
  too_many.bundles = 99;
  response = client.call(too_many);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("exceeds grid max"), std::string::npos);

  Request bad_flow = schedule_request();
  bad_flow.kind = QueryKind::Requote;
  bad_flow.flow = 100000;
  response = client.call(bad_flow);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("out of range"), std::string::npos);

  // After five structured errors the connection still answers.
  response = client.call(schedule_request());
  EXPECT_TRUE(response.ok) << response.error;
}

// --- The malformed-frame corpus ---

TEST_F(ServerTest, GarbagePayloadGetsStructuredError) {
  const int fd = raw_connect();
  write_all(fd, encode_frame("complete garbage, not even json"));
  FrameReader reader(fd);
  std::string payload;
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  const Response response = parse_response(payload);
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());
  ::close(fd);
  expect_server_alive();
}

TEST_F(ServerTest, BadQueryKindGetsStructuredError) {
  const int fd = raw_connect();
  write_all(fd, encode_frame("{\"id\":9,\"kind\":\"frobnicate\"}"));
  FrameReader reader(fd);
  std::string payload;
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  const Response response = parse_response(payload);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown query kind"), std::string::npos);
  ::close(fd);
  expect_server_alive();
}

TEST_F(ServerTest, TruncatedLengthPrefixDisconnect) {
  const int fd = raw_connect();
  write_all(fd, std::string_view("\x09\x00", 2));  // 2 of 4 prefix bytes
  ::close(fd);
  expect_server_alive();
}

TEST_F(ServerTest, MidFrameDisconnect) {
  const int fd = raw_connect();
  std::string torn = encode_frame(serialize_request(schedule_request()));
  torn.resize(torn.size() / 2);
  write_all(fd, torn);
  ::close(fd);
  expect_server_alive();
}

TEST_F(ServerTest, OversizedLengthGetsErrorThenClose) {
  const int fd = raw_connect();
  const std::uint32_t huge = 0xfffffffe;
  char prefix[4];
  std::memcpy(prefix, &huge, 4);
  write_all(fd, std::string_view(prefix, 4));
  // The server answers with a structured framing error, then hangs up.
  FrameReader reader(fd);
  std::string payload;
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  const Response response = parse_response(payload);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("frame length"), std::string::npos);
  EXPECT_EQ(reader.next(payload), FrameReader::Status::Eof);
  ::close(fd);
  expect_server_alive();
}

TEST_F(ServerTest, ZeroLengthGetsErrorThenClose) {
  const int fd = raw_connect();
  write_all(fd, std::string_view("\x00\x00\x00\x00", 4));
  FrameReader reader(fd);
  std::string payload;
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  EXPECT_FALSE(parse_response(payload).ok);
  EXPECT_EQ(reader.next(payload), FrameReader::Status::Eof);
  ::close(fd);
  expect_server_alive();
}

TEST_F(ServerTest, AbruptDisconnectStorm) {
  // A burst of connects that vanish at every protocol stage. The server
  // must survive all of them and keep answering.
  for (int i = 0; i < 20; ++i) {
    const int fd = raw_connect();
    switch (i % 4) {
      case 0:  // connect and vanish
        break;
      case 1:  // torn prefix
        write_all(fd, std::string_view("\xff", 1));
        break;
      case 2:  // mid-frame
        write_all(fd, std::string_view("\x40\x00\x00\x00partial", 11));
        break;
      case 3:  // a full valid frame, then vanish without reading
        write_all(fd, encode_frame(serialize_request(schedule_request())));
        break;
    }
    ::close(fd);
  }
  expect_server_alive();
}

TEST(ServerLifecycle, StartStopIsCleanAndIdempotent) {
  const std::string path = temp_socket_path("lifecycle");
  ServerOptions options;
  options.unix_path = path;
  Server server(tiny_grid(), options);
  server.start();
  {
    Client client = Client::connect_unix(path);
    Request request;
    request.kind = QueryKind::Schedule;
    request.market = "EU ISP/ced/linear";
    request.strategy = "Profit-weighted";
    ASSERT_TRUE(client.call(request).ok);
  }
  server.stop();
  server.stop();  // idempotent
  // The socket file is gone; connecting must fail.
  EXPECT_THROW(Client::connect_unix(path), std::system_error);
}

TEST(ServerLifecycle, StopWithLiveConnectionUnblocks) {
  const std::string path = temp_socket_path("liveconn");
  ServerOptions options;
  options.unix_path = path;
  Server server(tiny_grid(), options);
  server.start();
  Client client = Client::connect_unix(path);  // idle connection
  server.stop();  // must not hang on the idle reader
}

}  // namespace
}  // namespace manytiers::serve
