// Wire-protocol unit tests: request/response serialization round-trips
// and the frame layer's fault taxonomy, exercised over real socketpairs.
#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace manytiers::serve {
namespace {

TEST(QueryKind, RoundTripsAllKinds) {
  for (const auto kind : {QueryKind::Price, QueryKind::Schedule,
                          QueryKind::Requote, QueryKind::Reload,
                          QueryKind::Health}) {
    EXPECT_EQ(parse_query_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_query_kind("frobnicate"), std::invalid_argument);
}

TEST(Request, PriceRoundTrips) {
  Request request;
  request.id = 42;
  request.kind = QueryKind::Price;
  request.market = "EU ISP/ced/linear";
  request.strategy = "Optimal";
  request.bundles = 3;
  request.q = 123.5;
  request.d = 0.25;
  request.cost_class = 2;
  const Request parsed = parse_request(serialize_request(request));
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.kind, QueryKind::Price);
  EXPECT_EQ(parsed.market, request.market);
  EXPECT_EQ(parsed.strategy, request.strategy);
  EXPECT_EQ(parsed.bundles, 3u);
  EXPECT_DOUBLE_EQ(parsed.q, 123.5);
  EXPECT_DOUBLE_EQ(parsed.d, 0.25);
  EXPECT_EQ(parsed.cost_class, 2u);
}

TEST(Request, RequoteRoundTrips) {
  Request request;
  request.id = 7;
  request.kind = QueryKind::Requote;
  request.market = "CDN/logit/linear";
  request.strategy = "Profit-weighted";
  request.flow = 19;
  const Request parsed = parse_request(serialize_request(request));
  EXPECT_EQ(parsed.kind, QueryKind::Requote);
  EXPECT_EQ(parsed.flow, 19u);
  EXPECT_EQ(parsed.bundles, 0u);  // 0 = grid max
}

TEST(Request, ReloadOverridesAreOptional) {
  Request bare;
  bare.kind = QueryKind::Reload;
  const Request parsed_bare = parse_request(serialize_request(bare));
  EXPECT_FALSE(parsed_bare.seed.has_value());
  EXPECT_FALSE(parsed_bare.n_flows.has_value());

  Request full;
  full.kind = QueryKind::Reload;
  full.seed = 99;
  full.n_flows = 32;
  const Request parsed_full = parse_request(serialize_request(full));
  ASSERT_TRUE(parsed_full.seed.has_value());
  EXPECT_EQ(*parsed_full.seed, 99u);
  ASSERT_TRUE(parsed_full.n_flows.has_value());
  EXPECT_EQ(*parsed_full.n_flows, 32u);
}

TEST(Request, EscapedMarketNameRoundTrips) {
  Request request;
  request.kind = QueryKind::Schedule;
  request.market = "odd \"name\" with \\ backslash";
  request.strategy = "Optimal";
  const Request parsed = parse_request(serialize_request(request));
  EXPECT_EQ(parsed.market, request.market);
}

TEST(Request, MalformedPayloadsThrow) {
  EXPECT_THROW(parse_request(""), std::invalid_argument);
  EXPECT_THROW(parse_request("not json at all"), std::invalid_argument);
  EXPECT_THROW(parse_request("{}"), std::invalid_argument);  // missing id
  EXPECT_THROW(parse_request("{\"id\":1}"), std::invalid_argument);
  EXPECT_THROW(parse_request("{\"id\":1,\"kind\":\"frobnicate\"}"),
               std::invalid_argument);
  // Right shape, wrong field types.
  EXPECT_THROW(parse_request("{\"id\":\"x\",\"kind\":\"reload\"}"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_request("{\"id\":1,\"kind\":\"price\",\"market\":\"m\","
                    "\"strategy\":\"s\",\"bundles\":1,\"q\":\"NaNsense\","
                    "\"d\":1,\"class\":0}"),
      std::invalid_argument);
}

TEST(Response, ErrorRoundTrips) {
  const std::string payload = error_payload(5, 3, "it broke: \"badly\"");
  const Response parsed = parse_response(payload);
  EXPECT_EQ(parsed.id, 5u);
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.epoch, 3u);
  EXPECT_EQ(parsed.error, "it broke: \"badly\"");
  // The 3-arg form defaults the v1.1 code token.
  EXPECT_EQ(parsed.code, kCodeBadRequest);
}

TEST(Response, ErrorCodeTokensRoundTrip) {
  // The stable code tokens are a protocol contract: clients branch on
  // them instead of string-matching messages, so each must survive a
  // serialize/parse round-trip verbatim.
  for (const auto code : {kCodeOverloaded, kCodeDeadline, kCodeDraining,
                          kCodeBadRequest}) {
    const std::string payload = error_payload(9, 4, code, "shed");
    const Response parsed = parse_response(payload);
    EXPECT_FALSE(parsed.ok);
    EXPECT_EQ(parsed.code, code);
    EXPECT_EQ(parsed.error, "shed");
    // Re-serializing the parsed response preserves the token exactly.
    EXPECT_EQ(parse_response(serialize_response(parsed)).code, code);
  }
}

TEST(Response, PreV11ErrorFramesParseWithEmptyCode) {
  // Frames from servers predating the code field must still parse —
  // code is optional on the wire, empty on the parsed struct.
  const Response parsed = parse_response(
      "{\"id\":2,\"ok\":false,\"epoch\":1,\"error\":\"old server\"}");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.error, "old server");
  EXPECT_TRUE(parsed.code.empty());
}

TEST(Response, HealthRoundTrips) {
  Response response;
  response.id = 11;
  response.ok = true;
  response.epoch = 3;
  response.kind = QueryKind::Health;
  response.state = "draining";
  response.active_connections = 12;
  response.inflight = 5;
  response.shed = 1234;
  response.markets = 8;
  const std::string payload = serialize_response(response);
  const Response parsed = parse_response(payload);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.kind, QueryKind::Health);
  EXPECT_EQ(parsed.state, "draining");
  EXPECT_EQ(parsed.active_connections, 12u);
  EXPECT_EQ(parsed.inflight, 5u);
  EXPECT_EQ(parsed.shed, 1234u);
  EXPECT_EQ(parsed.markets, 8u);
  EXPECT_EQ(serialize_response(parsed), payload);
}

TEST(Request, HealthRoundTrips) {
  Request request;
  request.id = 21;
  request.kind = QueryKind::Health;
  const Request parsed = parse_request(serialize_request(request));
  EXPECT_EQ(parsed.id, 21u);
  EXPECT_EQ(parsed.kind, QueryKind::Health);
}

TEST(Response, ScheduleRoundTripsWithCaptureText) {
  Response response;
  response.id = 1;
  response.ok = true;
  response.epoch = 2;
  response.kind = QueryKind::Schedule;
  response.capture = 0.95330382738460162;
  response.tiers.push_back({15.25, 87.99, 110.52, 16, 28016.5});
  response.tiers.push_back({28.88, 140.62, 206.16, 10, 4892.3});
  const std::string payload = serialize_response(response);
  const Response parsed = parse_response(payload);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.kind, QueryKind::Schedule);
  EXPECT_DOUBLE_EQ(parsed.capture, response.capture);
  // The raw %.17g token survives the parse (byte-compare hook), and
  // re-serializing with it yields the identical payload.
  EXPECT_EQ(parsed.capture_text, "0.95330382738460162");
  ASSERT_EQ(parsed.tiers.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.tiers[0].price, 15.25);
  EXPECT_DOUBLE_EQ(parsed.tiers[1].rel_cost_hi, 206.16);
  EXPECT_EQ(parsed.tiers[0].n_flows, 16u);
  EXPECT_EQ(serialize_response(parsed), payload);
}

TEST(Response, PriceAndReloadRoundTrip) {
  Response price;
  price.id = 9;
  price.ok = true;
  price.epoch = 4;
  price.kind = QueryKind::Price;
  price.tier = 2;
  price.price = 41.5;
  price.rel_cost = 600.0;
  const Response parsed = parse_response(serialize_response(price));
  EXPECT_EQ(parsed.tier, 2u);
  EXPECT_DOUBLE_EQ(parsed.price, 41.5);

  Response reload;
  reload.id = 10;
  reload.ok = true;
  reload.epoch = 5;
  reload.kind = QueryKind::Reload;
  reload.markets = 6;
  EXPECT_EQ(parse_response(serialize_response(reload)).markets, 6u);
}

// --- Framing over a real socketpair ---

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    writer_ = fds[0];
    reader_fd_ = fds[1];
  }
  void TearDown() override {
    if (writer_ >= 0) ::close(writer_);
    ::close(reader_fd_);
  }
  void close_writer() {
    ::close(writer_);
    writer_ = -1;
  }
  void send_raw(std::string_view bytes) { write_all(writer_, bytes); }

  int writer_ = -1;
  int reader_fd_ = -1;
};

TEST_F(FramingTest, PrefixIsLittleEndian) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(frame[0], 3);
  EXPECT_EQ(frame[1], 0);
  EXPECT_EQ(frame[2], 0);
  EXPECT_EQ(frame[3], 0);
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST_F(FramingTest, ReadsBackToBackFramesThenCleanEof) {
  send_raw(encode_frame("first") + encode_frame("second"));
  close_writer();
  FrameReader reader(reader_fd_);
  std::string payload;
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  EXPECT_EQ(payload, "first");
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  EXPECT_EQ(payload, "second");
  EXPECT_EQ(reader.next(payload), FrameReader::Status::Eof);
}

TEST_F(FramingTest, BufferedFrameSeesPipelinedInput) {
  send_raw(encode_frame("a") + encode_frame("b"));
  FrameReader reader(reader_fd_);
  std::string payload;
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  EXPECT_TRUE(reader.buffered_frame());
  ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
  EXPECT_EQ(payload, "b");
  EXPECT_FALSE(reader.buffered_frame());
}

TEST_F(FramingTest, TruncatedPrefixIsTornPrefix) {
  send_raw(std::string("\x05\x00", 2));  // 2 of the 4 length bytes
  close_writer();
  FrameReader reader(reader_fd_);
  std::string payload;
  try {
    reader.next(payload);
    FAIL() << "expected FrameError";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::TornPrefix);
  }
}

TEST_F(FramingTest, DisconnectMidPayloadIsMidFrame) {
  std::string torn = encode_frame("0123456789");
  torn.resize(4 + 4);  // full prefix, 4 of 10 payload bytes
  send_raw(torn);
  close_writer();
  FrameReader reader(reader_fd_);
  std::string payload;
  try {
    reader.next(payload);
    FAIL() << "expected FrameError";
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameError::Kind::MidFrame);
  }
}

TEST_F(FramingTest, ZeroAndOversizedLengthsAreBadLength) {
  for (const std::uint32_t bad : {0u, kMaxFrame + 1, 0xffffffffu}) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    char prefix[4];
    std::memcpy(prefix, &bad, 4);  // LE host: same byte order as the wire
    write_all(fds[0], std::string_view(prefix, 4));
    FrameReader reader(fds[1]);
    std::string payload;
    try {
      reader.next(payload);
      FAIL() << "expected FrameError for length " << bad;
    } catch (const FrameError& e) {
      EXPECT_EQ(e.kind(), FrameError::Kind::BadLength);
    }
    // A bad buffered length reports as "frame ready": next() must fault
    // without blocking, and callers drain before blocking again.
    EXPECT_TRUE(reader.buffered_frame());
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

TEST_F(FramingTest, RoundtripAgainstEchoPeer) {
  std::thread echo([fd = writer_] {
    FrameReader reader(fd);
    std::string payload;
    ASSERT_EQ(reader.next(payload), FrameReader::Status::Frame);
    write_all(fd, encode_frame("echo:" + payload));
  });
  EXPECT_EQ(roundtrip(reader_fd_, "ping"), "echo:ping");
  echo.join();
}

}  // namespace
}  // namespace manytiers::serve
