// Snapshot-swap concurrency, the TSan leg's serve test: reader threads
// hammer queries over real connections while a background admin thread
// keeps reloading with different seeds. Every response must be
// internally consistent — its payload must match the one canonical
// answer for the epoch it claims, so a torn read (prices from one
// snapshot, epoch tag from another) fails the byte comparison. Runs in
// the `serve` ctest label wired into check.sh's TSan leg.
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve_test_util.hpp"

namespace manytiers::serve {
namespace {

using testing::temp_socket_path;
using testing::tiny_grid;

TEST(SnapshotSwap, ConcurrentReadersNeverSeeTornEpochs) {
  const std::string path = temp_socket_path("swap");
  ServerOptions options;
  options.unix_path = path;
  Server server(tiny_grid(), options);
  server.start();

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 200;
  constexpr int kReloads = 8;

  // epoch -> canonical schedule payload for that epoch. Filled on first
  // sight, byte-compared ever after.
  std::mutex canon_mutex;
  std::map<std::uint64_t, std::string> canonical;
  std::atomic<bool> failed{false};

  const std::string schedule_payload = serialize_request([] {
    Request request;
    request.id = 1;
    request.kind = QueryKind::Schedule;
    request.market = "EU ISP/ced/linear";
    request.strategy = "Profit-weighted";
    request.bundles = 2;
    return request;
  }());

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Client client = Client::connect_unix(path);
      for (int i = 0; i < kQueriesPerReader && !failed.load(); ++i) {
        const std::string raw = client.call_raw(schedule_payload);
        Response response;
        try {
          response = parse_response(raw);
        } catch (const std::exception& e) {
          ADD_FAILURE() << "reader " << r << ": unparseable response: "
                        << e.what();
          failed.store(true);
          return;
        }
        if (!response.ok) {
          ADD_FAILURE() << "reader " << r << ": " << response.error;
          failed.store(true);
          return;
        }
        // The payload carries the epoch; every payload claiming epoch E
        // must be byte-identical to the first one that claimed E.
        const std::lock_guard<std::mutex> lock(canon_mutex);
        const auto [it, inserted] = canonical.emplace(response.epoch, raw);
        if (!inserted && it->second != raw) {
          ADD_FAILURE() << "reader " << r << ": two distinct payloads for "
                        << "epoch " << response.epoch << ":\n  " << it->second
                        << "\n  " << raw;
          failed.store(true);
          return;
        }
      }
    });
  }

  std::thread reloader([&] {
    Client client = Client::connect_unix(path);
    for (int i = 0; i < kReloads && !failed.load(); ++i) {
      Request request;
      request.id = 1000 + i;
      request.kind = QueryKind::Reload;
      // A different seed each time: successive epochs answer with
      // different bytes, so cross-epoch mixing cannot hide.
      request.seed = 100 + i;
      const Response response = client.call(request);
      if (!response.ok) {
        ADD_FAILURE() << "reload " << i << ": " << response.error;
        failed.store(true);
        return;
      }
      EXPECT_EQ(response.epoch, std::uint64_t(i) + 2);
    }
  });

  for (auto& t : readers) t.join();
  reloader.join();
  server.stop();

  ASSERT_FALSE(failed.load());
  EXPECT_EQ(server.epoch(), std::uint64_t(kReloads) + 1);
  // Distinct epochs answered with distinct *prices* — the epoch field
  // alone would make payloads differ trivially, so compare the capture
  // token: different seeds must actually change the schedule, otherwise
  // the torn-read check above proves nothing.
  std::vector<std::string> captures;
  for (const auto& [epoch, payload] : canonical) {
    captures.push_back(parse_response(payload).capture_text);
  }
  for (std::size_t i = 1; i < captures.size(); ++i) {
    EXPECT_NE(captures[i - 1], captures[i]);
  }
  // Readers overlapped at least one swap; with 8 reloads against 800
  // queries this only fails if the scheduler serialized everything.
  EXPECT_GE(canonical.size(), 2u)
      << "readers never observed more than one epoch";
}

// The server-side snapshot accessor races with reloads too (the daemon
// main thread reads it for lifecycle lines); pin it under TSan.
TEST(SnapshotSwap, AccessorRacesWithReloadCleanly) {
  const std::string path = temp_socket_path("swap_accessor");
  ServerOptions options;
  options.unix_path = path;
  Server server(tiny_grid(), options);
  server.start();

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      const auto snapshot = server.snapshot();
      EXPECT_GE(snapshot->epoch, 1u);
      EXPECT_EQ(snapshot->markets.size(), 1u);
    }
  });
  Client client = Client::connect_unix(path);
  for (int i = 0; i < 4; ++i) {
    Request request;
    request.kind = QueryKind::Reload;
    request.seed = 500 + i;
    ASSERT_TRUE(client.call(request).ok);
  }
  stop.store(true);
  poller.join();
  server.stop();
  EXPECT_EQ(server.epoch(), 5u);
}

}  // namespace
}  // namespace manytiers::serve
