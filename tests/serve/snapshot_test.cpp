// Snapshot semantics: calibration matches the batch pricing path
// exactly, tier schedules partition the market, and the socket-free
// query evaluators enforce their contracts.
#include "serve/snapshot.hpp"

#include <algorithm>
#include <stdexcept>

#include "gtest/gtest.h"
#include "pricing/counterfactual.hpp"
#include "serve_test_util.hpp"

namespace manytiers::serve {
namespace {

using testing::tiny_grid;

class SmokeSnapshotTest : public ::testing::Test {
 protected:
  // One snapshot shared across the suite: smoke-grid calibration is the
  // expensive part and all assertions are read-only.
  static void SetUpTestSuite() {
    snapshot_ = new std::shared_ptr<const Snapshot>(
        build_snapshot(driver::smoke_grid()));
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    snapshot_ = nullptr;
  }
  const Snapshot& snap() const { return **snapshot_; }

  static std::shared_ptr<const Snapshot>* snapshot_;
};

std::shared_ptr<const Snapshot>* SmokeSnapshotTest::snapshot_ = nullptr;

TEST_F(SmokeSnapshotTest, CoversEveryGridMarket) {
  const auto grid = driver::smoke_grid();
  const std::size_t expected =
      grid.datasets.size() * grid.demand_kinds.size() * grid.cost_kinds.size();
  EXPECT_EQ(snap().markets.size(), expected);
  EXPECT_EQ(snap().epoch, 1u);
  for (const auto& entry : snap().markets) {
    EXPECT_EQ(snap().find_market(entry->key), entry.get());
    EXPECT_EQ(entry->key,
              market_key(entry->dataset, entry->demand, entry->cost));
    EXPECT_EQ(entry->schedules.size(), grid.strategies.size());
  }
  EXPECT_EQ(snap().find_market("no/such/market"), nullptr);
}

TEST_F(SmokeSnapshotTest, StrategySlotsMatchGridOrder) {
  const auto grid = driver::smoke_grid();
  for (std::size_t s = 0; s < grid.strategies.size(); ++s) {
    const auto slot = snap().strategy_slot(grid.strategies[s]);
    ASSERT_TRUE(slot.has_value());
    EXPECT_EQ(*slot, s);
  }
  EXPECT_FALSE(
      snap().strategy_slot(pricing::Strategy::CostDivision).has_value());
}

TEST_F(SmokeSnapshotTest, StrategyNamesResolve) {
  EXPECT_EQ(strategy_from_name("Optimal"), pricing::Strategy::Optimal);
  EXPECT_EQ(strategy_from_name("Profit-weighted"),
            pricing::Strategy::ProfitWeighted);
  EXPECT_EQ(strategy_from_name("Class-aware profit-weighted"),
            pricing::Strategy::ClassAwareProfitWeighted);
  EXPECT_FALSE(strategy_from_name("Optimum").has_value());
}

// The one-pricing-truth invariant, in-process half: every schedule's
// capture must equal what capture_series (the batch driver's path)
// computes — exactly, not approximately.
TEST_F(SmokeSnapshotTest, CaptureMatchesBatchPricingPathExactly) {
  const auto grid = driver::smoke_grid();
  for (const auto& entry : snap().markets) {
    for (std::size_t s = 0; s < grid.strategies.size(); ++s) {
      const auto series = pricing::capture_series(
          entry->market, grid.strategies[s], grid.max_bundles);
      ASSERT_EQ(entry->schedules[s].size(), grid.max_bundles);
      for (std::size_t b = 1; b <= grid.max_bundles; ++b) {
        EXPECT_EQ(entry->schedule(s, b).capture, series[b - 1])
            << entry->key << " strategy slot " << s << " bundles " << b;
      }
    }
  }
}

TEST_F(SmokeSnapshotTest, SchedulesPartitionTheMarket) {
  for (const auto& entry : snap().markets) {
    for (const auto& per_strategy : entry->schedules) {
      for (std::size_t b = 0; b < per_strategy.size(); ++b) {
        const Schedule& schedule = per_strategy[b];
        EXPECT_EQ(schedule.tiers.size(), b + 1);
        EXPECT_EQ(schedule.tier_of_flow.size(), entry->market.size());
        std::size_t member_total = 0;
        for (std::size_t t = 0; t < schedule.tiers.size(); ++t) {
          member_total += schedule.tiers[t].n_flows;
          if (t > 0) {
            EXPECT_LE(schedule.tiers[t - 1].rel_cost_lo,
                      schedule.tiers[t].rel_cost_lo);
          }
        }
        EXPECT_EQ(member_total, entry->market.size());
        const auto& rel = entry->market.relative_costs();
        for (std::size_t i = 0; i < schedule.tier_of_flow.size(); ++i) {
          const std::size_t t = schedule.tier_of_flow[i];
          ASSERT_LT(t, schedule.tiers.size());
          EXPECT_GE(rel[i], schedule.tiers[t].rel_cost_lo);
          EXPECT_LE(rel[i], schedule.tiers[t].rel_cost_hi);
        }
      }
    }
  }
}

TEST_F(SmokeSnapshotTest, RequoteAgreesWithTierMap) {
  const MarketEntry* entry = snap().markets.front().get();
  const Schedule& schedule = entry->schedule(0, snap().grid.max_bundles);
  for (std::size_t i = 0; i < entry->market.size(); ++i) {
    const Quote quote = requote_flow(*entry, schedule, i);
    EXPECT_EQ(quote.tier, schedule.tier_of_flow[i]);
    EXPECT_EQ(quote.price, schedule.tiers[quote.tier].price);
    EXPECT_EQ(quote.rel_cost, entry->market.relative_costs()[i]);
  }
  EXPECT_THROW(requote_flow(*entry, schedule, entry->market.size()),
               std::invalid_argument);
}

TEST_F(SmokeSnapshotTest, PriceFlowPicksContainingOrNearestTier) {
  const MarketEntry* entry = snap().markets.front().get();
  const Schedule& schedule = entry->schedule(0, snap().grid.max_bundles);
  // Re-pricing an existing flow's (q, d) must land it in its own tier:
  // its relative cost is inside that tier's span by construction.
  const auto& flows = entry->market.flows();
  for (std::size_t i = 0; i < flows.size(); i += 7) {
    const Quote quote = price_flow(*entry, schedule, flows[i].demand_mbps,
                                   flows[i].distance_miles, 0);
    const std::size_t t = quote.tier;
    EXPECT_GE(quote.rel_cost, schedule.tiers[t].rel_cost_lo);
    EXPECT_LE(quote.rel_cost, schedule.tiers[t].rel_cost_hi);
  }
  // A flow cheaper than every tier snaps to the cheapest one.
  const Quote low = price_flow(*entry, schedule, 1.0, 0.0, 0);
  EXPECT_EQ(low.tier, 0u);
  // A flow far beyond every tier snaps to the most expensive one.
  const Quote high = price_flow(*entry, schedule, 1.0, 1e7, 0);
  EXPECT_EQ(high.tier, schedule.tiers.size() - 1);
}

TEST_F(SmokeSnapshotTest, QueryValidationThrows) {
  const MarketEntry* entry = snap().markets.front().get();  // linear cost
  const Schedule& schedule = entry->schedule(0, 1);
  EXPECT_THROW(price_flow(*entry, schedule, 0.0, 10.0, 0),
               std::invalid_argument);  // q must be > 0
  EXPECT_THROW(price_flow(*entry, schedule, 1.0, -1.0, 0),
               std::invalid_argument);  // d must be >= 0
  EXPECT_THROW(price_flow(*entry, schedule, 1.0, 10.0, 1),
               std::invalid_argument);  // linear model has no classes
}

// Class-addressed queries against the discrete cost models: regional
// classes order metro < national < international, dest-type off-net
// costs exactly twice on-net (the paper's 1.0 / 2.0 relative costs).
TEST(SnapshotClasses, RegionalAndDestTypeClassesAddress) {
  auto grid = tiny_grid();
  grid.cost_kinds = {driver::CostKind::Regional, driver::CostKind::DestType};
  const auto snapshot = build_snapshot(grid);
  ASSERT_EQ(snapshot->markets.size(), 2u);

  const MarketEntry* regional = snapshot->markets[0].get();
  ASSERT_EQ(regional->cost, driver::CostKind::Regional);
  const double metro = query_relative_cost(*regional, 10.0, 100.0, 0);
  const double national = query_relative_cost(*regional, 10.0, 100.0, 1);
  const double intl = query_relative_cost(*regional, 10.0, 100.0, 2);
  EXPECT_LT(metro, national);
  EXPECT_LT(national, intl);
  EXPECT_THROW(query_relative_cost(*regional, 10.0, 100.0, 3),
               std::invalid_argument);

  const MarketEntry* dest = snapshot->markets[1].get();
  ASSERT_EQ(dest->cost, driver::CostKind::DestType);
  const double on_net = query_relative_cost(*dest, 10.0, 100.0, 0);
  const double off_net = query_relative_cost(*dest, 10.0, 100.0, 1);
  EXPECT_DOUBLE_EQ(off_net, 2.0 * on_net);
  EXPECT_THROW(query_relative_cost(*dest, 10.0, 100.0, 2),
               std::invalid_argument);
}

TEST(SnapshotBuild, RejectsSweepGrids) {
  EXPECT_THROW(build_snapshot(driver::alpha_sweep_grid()),
               std::invalid_argument);
}

TEST(SnapshotBuild, EpochAndSeedOverridesChangeResults) {
  auto grid = tiny_grid();
  SnapshotBuildOptions options;
  options.epoch = 7;
  const auto a = build_snapshot(grid, options);
  EXPECT_EQ(a->epoch, 7u);
  grid.base.seed = 43;
  const auto b = build_snapshot(grid, options);
  // Different dataset seed -> different calibration -> different capture.
  EXPECT_NE(a->markets[0]->schedule(0, 2).capture,
            b->markets[0]->schedule(0, 2).capture);
  // Same spec twice -> bit-identical capture (determinism).
  const auto c = build_snapshot(grid, options);
  EXPECT_EQ(b->markets[0]->schedule(0, 2).capture,
            c->markets[0]->schedule(0, 2).capture);
}

}  // namespace
}  // namespace manytiers::serve
