// Chaos harness: drive the real manytiers_serve binary with misbehaving
// peers — slow-loris writers, half-open sockets, mid-frame disconnects
// and RST aborts, pipelined floods past the admission budget, reloads
// during overload, and SIGTERM drains against stalled clients — and
// assert the hardening invariants from the outside:
//
//   * accepted requests answer byte-identically to an unloaded control
//     exchange on the same snapshot epoch;
//   * every shed or refused request receives a typed protocol error
//     (code overloaded / deadline / draining), never a silent reset;
//   * the daemon never wedges: it keeps answering well-behaved clients
//     throughout, and SIGTERM always reaches exit 0 within the drain
//     budget, stalled peers notwithstanding.
//
// Runs under the asan and tsan presets via the `serve` ctest label, so
// "no leak, no race" is part of the pass criterion.
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "orchestrator/process.hpp"
#include "serve/client.hpp"
#include "serve/fault_client.hpp"
#include "serve_test_util.hpp"

namespace manytiers::serve {
namespace {

using orchestrator::ExitStatus;
using testing::temp_socket_path;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

ExitStatus wait_for_exit(pid_t pid, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (const auto status = orchestrator::try_wait(pid)) return *status;
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "daemon did not exit in " << timeout_ms << " ms";
      return orchestrator::kill_and_reap(pid);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Request price_request(std::uint64_t id) {
  Request request;
  request.id = id;
  request.kind = QueryKind::Price;
  request.market = "EU ISP/ced/linear";
  request.strategy = "Optimal";
  request.q = 42.0;
  request.d = 250.0;
  return request;
}

Request health_request(std::uint64_t id = 99) {
  Request request;
  request.id = id;
  request.kind = QueryKind::Health;
  return request;
}

// Spawn the daemon with extra flags; the caller owns the SIGTERM.
pid_t spawn_daemon(const std::string& socket_path, const std::string& log_path,
                   const std::vector<std::string>& extra_flags) {
  orchestrator::SpawnSpec spec;
  spec.argv = {MANYTIERS_SERVE_BIN, "--grid", "smoke", "--socket",
               socket_path};
  for (const auto& flag : extra_flags) spec.argv.push_back(flag);
  spec.log_path = log_path;
  return orchestrator::spawn_process(spec);
}

void expect_clean_exit(pid_t pid, const std::string& log_path) {
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  const ExitStatus status = wait_for_exit(pid, 60000);
  EXPECT_FALSE(status.signaled) << "killed by signal " << status.signal;
  EXPECT_EQ(status.code, 0) << slurp(log_path);
}

TEST(ServeChaos, SlowLorisAndHalfOpenPeersAreReapedServiceContinues) {
  const std::string socket_path = temp_socket_path("chaos_loris");
  const std::string log_path = socket_path + ".log";
  const pid_t pid = spawn_daemon(
      socket_path, log_path,
      {"--idle-timeout-ms", "300", "--frame-timeout-ms", "400"});

  Client control = Client::connect_unix_retry(socket_path, 60000);
  control.set_timeout_ms(30000);
  const std::string expected =
      control.call_raw(serialize_request(price_request(1)));
  ASSERT_TRUE(parse_response(expected).ok);

  // Two half-open peers (connect, never send) and two slow-loris
  // writers dribbling a valid frame a byte at a time — slower than the
  // frame window allows.
  FaultClient silent_a = FaultClient::connect_unix(socket_path);
  FaultClient silent_b = FaultClient::connect_unix(socket_path);
  silent_a.go_silent();
  silent_b.go_silent();
  std::vector<std::thread> lorises;
  std::vector<FaultClient> loris_clients;
  loris_clients.push_back(FaultClient::connect_unix(socket_path));
  loris_clients.push_back(FaultClient::connect_unix(socket_path));
  for (auto& loris : loris_clients) {
    lorises.emplace_back([&loris] {
      // A short payload (6-byte frame) at 1 byte / 120 ms: completing
      // takes ~600 ms, so the 400 ms frame window must cut it first.
      loris.dribble("xy", 1, 120);
    });
  }

  // Meanwhile the well-behaved client must keep getting byte-identical
  // answers the whole time the pests are being reaped.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(control.call_raw(serialize_request(price_request(1))), expected)
        << "iteration " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& t : lorises) t.join();
  // The loris connections were cut, not answered.
  for (auto& loris : loris_clients) {
    EXPECT_FALSE(loris.try_read_frame(2000).has_value());
  }
  expect_clean_exit(pid, log_path);
  std::remove(log_path.c_str());
}

TEST(ServeChaos, MidFrameDisconnectsAndRstAbortsNeverWedge) {
  const std::string socket_path = temp_socket_path("chaos_torn");
  const std::string log_path = socket_path + ".log";
  const pid_t pid =
      spawn_daemon(socket_path, log_path, {"--idle-timeout-ms", "500"});

  Client control = Client::connect_unix_retry(socket_path, 60000);
  control.set_timeout_ms(30000);
  const std::string expected =
      control.call_raw(serialize_request(price_request(1)));

  for (int round = 0; round < 20; ++round) {
    FaultClient pest = FaultClient::connect_unix(socket_path);
    const std::string payload = serialize_request(price_request(2));
    switch (round % 4) {
      case 0:  // torn length prefix
        pest.send_torn(payload, 2);
        pest.close();
        break;
      case 1:  // disconnect mid-payload
        pest.send_torn(payload, payload.size() / 2 + 4);
        pest.close();
        break;
      case 2:  // RST abort mid-payload
        pest.send_torn(payload, payload.size() / 2 + 4);
        pest.abort_rst();
        break;
      default:  // full frame then RST before reading the answer
        pest.send_raw(encode_frame(payload));
        pest.abort_rst();
        break;
    }
    // After every abuse, the daemon still answers byte-identically.
    EXPECT_EQ(control.call_raw(serialize_request(price_request(1))), expected)
        << "round " << round;
  }
  expect_clean_exit(pid, log_path);
  std::remove(log_path.c_str());
}

TEST(ServeChaos, ConnectionCapRefusalsAreTypedAndAdmittedWorkIsExact) {
  const std::string socket_path = temp_socket_path("chaos_cap");
  const std::string log_path = socket_path + ".log";
  const pid_t pid =
      spawn_daemon(socket_path, log_path, {"--max-connections", "2"});

  Client a = Client::connect_unix_retry(socket_path, 60000);
  a.set_timeout_ms(30000);
  const std::string expected =
      a.call_raw(serialize_request(price_request(1)));
  Client b = Client::connect_unix(socket_path);
  b.set_timeout_ms(30000);
  ASSERT_TRUE(b.call(price_request(2)).ok);

  // Every connection past the cap gets exactly one typed refusal frame
  // and then EOF — never a silent reset.
  for (int i = 0; i < 8; ++i) {
    FaultClient extra = FaultClient::connect_unix(socket_path);
    const auto frame = extra.try_read_frame(10000);
    ASSERT_TRUE(frame.has_value()) << "refusal " << i << " was not typed";
    const Response refusal = parse_response(*frame);
    EXPECT_FALSE(refusal.ok);
    EXPECT_EQ(refusal.code, kCodeOverloaded);
    EXPECT_FALSE(extra.try_read_frame(1000).has_value());  // EOF after
  }

  // Admitted connections were never perturbed, and the refusals are
  // visible in the health gauges.
  EXPECT_EQ(a.call_raw(serialize_request(price_request(1))), expected);
  const Response health = a.call(health_request());
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_GE(health.shed, 8u);
  expect_clean_exit(pid, log_path);
  std::remove(log_path.c_str());
}

TEST(ServeChaos, PipelinedFloodWithReloadStormAllRequestsAnswered) {
  const std::string socket_path = temp_socket_path("chaos_flood");
  const std::string log_path = socket_path + ".log";
  // A deadline tight enough that a sanitized build sheds part of the
  // flood: the invariant is not "all accepted" but "all answered,
  // every answer ok or typed".
  const pid_t pid = spawn_daemon(socket_path, log_path,
                                 {"--request-deadline-ms", "100"});

  Client flood = Client::connect_unix_retry(socket_path, 60000);
  flood.set_timeout_ms(60000);  // a wedged daemon fails loudly, not forever
  constexpr std::size_t kFlood = 2000;
  std::string burst;
  for (std::size_t i = 0; i < kFlood; ++i) {
    append_frame(burst, serialize_request(price_request(i + 1)));
  }

  // Reload storm concurrent with the flood: an admin recalibrating must
  // not be shed or blocked by the overload.
  std::thread reloader([&socket_path] {
    Client admin = Client::connect_unix(socket_path);
    admin.set_timeout_ms(60000);
    for (int i = 0; i < 3; ++i) {
      Request reload;
      reload.id = 9000 + i;
      reload.kind = QueryKind::Reload;
      const Response response = admin.call(reload);
      EXPECT_TRUE(response.ok) << response.error;
      EXPECT_GE(response.epoch, 2u);
    }
  });

  // Write from a separate thread while reading responses here: burst
  // plus responses exceed the kernel socket buffers, and a
  // write-then-read client would deadlock against the server's own
  // blocked response writes.
  std::thread writer([&flood, &burst] { write_all(flood.fd(), burst); });
  std::size_t ok_count = 0, shed_count = 0;
  for (std::size_t i = 0; i < kFlood; ++i) {
    const Response response = flood.recv();
    if (response.ok) {
      ++ok_count;
      EXPECT_GT(response.price, 0.0);
    } else {
      ++shed_count;
      EXPECT_EQ(response.code, kCodeDeadline) << response.error;
    }
  }
  writer.join();
  reloader.join();
  EXPECT_EQ(ok_count + shed_count, kFlood);
  EXPECT_GE(ok_count, 1u) << "a flood must not shed literally everything";
  expect_clean_exit(pid, log_path);
  std::remove(log_path.c_str());
}

TEST(ServeChaos, SigtermDrainCompletesInFlightByteIdentically) {
  const std::string socket_path = temp_socket_path("chaos_drain");
  const std::string log_path = socket_path + ".log";
  const pid_t pid = spawn_daemon(socket_path, log_path, {});

  std::vector<std::string> expected;
  {
    Client control = Client::connect_unix_retry(socket_path, 60000);
    control.set_timeout_ms(30000);
    for (std::size_t i = 0; i < 50; ++i) {
      expected.push_back(
          control.call_raw(serialize_request(price_request(i + 1))));
    }
  }

  // Pipeline the same 50 requests, then SIGTERM while they are in
  // flight: the drain must finish and flush every one, byte-identical,
  // before the process exits. One synchronous round-trip first:
  // connect() succeeding only proves the kernel queued the connection
  // in the listen backlog, and a connection the daemon has not
  // *accepted* yet is fair game for a typed draining refusal.
  Client client = Client::connect_unix(socket_path);
  client.set_timeout_ms(30000);
  ASSERT_TRUE(client.call(price_request(999)).ok);
  std::string burst;
  for (std::size_t i = 0; i < 50; ++i) {
    append_frame(burst, serialize_request(price_request(i + 1)));
  }
  write_all(client.fd(), burst);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);

  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(client.recv_raw(), expected[i]) << "response " << i;
  }

  const ExitStatus status = wait_for_exit(pid, 60000);
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 0) << slurp(log_path);
  const std::string log = slurp(log_path);
  EXPECT_NE(log.find("\"event\":\"draining\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"event\":\"drained\""), std::string::npos) << log;
  std::remove(log_path.c_str());
}

TEST(ServeChaos, DrainHardClosesStalledClientAndRefusesLatecomersTyped) {
  const std::string socket_path = temp_socket_path("chaos_stall");
  const std::string log_path = socket_path + ".log";
  const pid_t pid = spawn_daemon(socket_path, log_path,
                                 {"--drain-timeout-ms", "2000"});

  // Wait for the daemon to finish calibrating and bind the socket.
  {
    Client probe = Client::connect_unix_retry(socket_path, 60000);
    probe.set_timeout_ms(30000);
    ASSERT_TRUE(probe.call(health_request()).ok);
  }
  // The stall: flood requests and never read a single response. The
  // handler eventually blocks in send() with full buffers, so a plain
  // drain would hang forever — the drain timeout's hard-close is the
  // only way out.
  FaultClient stalled = FaultClient::connect_unix(socket_path);
  std::thread flooder([&stalled] {
    const std::string frame =
        encode_frame(serialize_request(price_request(1)));
    std::string chunk;
    for (int i = 0; i < 64; ++i) chunk += frame;
    try {
      for (int i = 0; i < 400; ++i) stalled.send_raw(chunk);
    } catch (const std::exception&) {
      // The hard-close cut us off mid-write: exactly the point.
    }
  });
  // Give the handler time to start answering into the void.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  // Let the daemon take the signal and flip to draining before probing,
  // so the latecomer below cannot race in ahead of the flag.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // While the stalled connection holds the drain open, latecomers get
  // typed refusals and health still answers with the draining state.
  {
    Client late = Client::connect_unix(socket_path);
    late.set_timeout_ms(10000);
    const Response refusal = late.call(price_request(5));
    EXPECT_FALSE(refusal.ok);
    EXPECT_EQ(refusal.code, kCodeDraining) << refusal.error;
  }
  {
    Client probe = Client::connect_unix(socket_path);
    probe.set_timeout_ms(10000);
    const Response health = probe.call(health_request());
    ASSERT_TRUE(health.ok) << health.error;
    EXPECT_EQ(health.state, "draining");
  }

  const ExitStatus status = wait_for_exit(pid, 60000);
  const double drain_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 0) << slurp(log_path);
  // The drain budget was 2 s; generous slack for sanitized builds, but
  // nowhere near a wedge.
  EXPECT_LT(drain_wall_s, 30.0);
  flooder.join();
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace manytiers::serve
