#include "workload/table1.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace manytiers::workload {
namespace {

FlowSet small_set() {
  FlowSet fs("tiny");
  Flow a;
  a.demand_mbps = 3000.0;
  a.distance_miles = 100.0;
  fs.add(a);
  Flow b;
  b.demand_mbps = 1000.0;
  b.distance_miles = 300.0;
  fs.add(b);
  return fs;
}

TEST(ComputeStats, MatchesHandComputedValues) {
  const auto s = compute_stats(small_set());
  EXPECT_EQ(s.name, "tiny");
  EXPECT_EQ(s.flow_count, 2u);
  EXPECT_DOUBLE_EQ(s.aggregate_gbps, 4.0);
  EXPECT_DOUBLE_EQ(s.wavg_distance_miles, (3000.0 * 100 + 1000.0 * 300) / 4000.0);
  // distances {100, 300}: mean 200, population sd 100 -> CV 0.5.
  EXPECT_DOUBLE_EQ(s.cv_distance, 0.5);
  // demands {3000, 1000}: mean 2000, sd 1000 -> CV 0.5.
  EXPECT_DOUBLE_EQ(s.cv_demand, 0.5);
}

TEST(ComputeStats, RejectsEmpty) {
  EXPECT_THROW(compute_stats(FlowSet("e")), std::invalid_argument);
}

TEST(PrintTable1, RendersAllDatasets) {
  std::vector<DatasetStats> rows{compute_stats(small_set())};
  rows[0].name = "EU ISP";
  std::ostringstream os;
  print_table1(os, rows);
  const auto out = os.str();
  EXPECT_NE(out.find("EU ISP"), std::string::npos);
  EXPECT_NE(out.find("w-avg dist"), std::string::npos);
  EXPECT_NE(out.find("CV demand"), std::string::npos);
}

}  // namespace
}  // namespace manytiers::workload
