#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include "geo/cities.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/table1.hpp"

namespace manytiers::workload {
namespace {

class GeneratorTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorTest, HitsTable1Moments) {
  const auto kind = GetParam();
  const auto spec = paper_spec(kind);
  const auto flows = generate_dataset(kind, {.seed = 42, .n_flows = 400});
  const auto stats = compute_stats(flows);
  EXPECT_NEAR(stats.wavg_distance_miles, spec.wavg_distance_miles,
              0.01 * spec.wavg_distance_miles);
  EXPECT_NEAR(stats.aggregate_gbps, spec.aggregate_gbps,
              0.01 * spec.aggregate_gbps);
  EXPECT_NEAR(stats.cv_distance, spec.cv_distance, 0.12 * spec.cv_distance);
  EXPECT_NEAR(stats.cv_demand, spec.cv_demand, 0.12 * spec.cv_demand);
}

TEST_P(GeneratorTest, IsDeterministicInSeed) {
  const auto kind = GetParam();
  const auto a = generate_dataset(kind, {.seed = 7, .n_flows = 50});
  const auto b = generate_dataset(kind, {.seed = 7, .n_flows = 50});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].demand_mbps, b[i].demand_mbps);
    EXPECT_DOUBLE_EQ(a[i].distance_miles, b[i].distance_miles);
  }
}

TEST_P(GeneratorTest, DifferentSeedsDiffer) {
  const auto kind = GetParam();
  const auto a = generate_dataset(kind, {.seed = 1, .n_flows = 50});
  const auto b = generate_dataset(kind, {.seed = 2, .n_flows = 50});
  int identical = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].demand_mbps == b[i].demand_mbps) ++identical;
  }
  EXPECT_LT(identical, 5);
}

TEST_P(GeneratorTest, AllFlowsAreValid) {
  const auto flows = generate_dataset(GetParam(), {.seed = 3, .n_flows = 200});
  EXPECT_EQ(flows.size(), 200u);
  for (const auto& f : flows) {
    EXPECT_GT(f.demand_mbps, 0.0);
    EXPECT_GT(f.distance_miles, 0.0);
    ASSERT_TRUE(f.src_city.has_value());
    ASSERT_TRUE(f.dst_city.has_value());
    EXPECT_LT(*f.src_city, geo::world_cities().size());
    EXPECT_LT(*f.dst_city, geo::world_cities().size());
    EXPECT_NE(f.src_ip, 0u);
    EXPECT_NE(f.dst_ip, 0u);
  }
}

TEST_P(GeneratorTest, RejectsDegenerateSizes) {
  EXPECT_THROW(generate_dataset(GetParam(), {.seed = 1, .n_flows = 1}),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, GeneratorTest,
                         ::testing::Values(DatasetKind::EuIsp, DatasetKind::Cdn,
                                           DatasetKind::Internet2),
                         [](const auto& info) {
                           switch (info.param) {
                             case DatasetKind::EuIsp: return "EuIsp";
                             case DatasetKind::Cdn: return "Cdn";
                             default: return "Internet2";
                           }
                         });

TEST(EuIspGenerator, HasAllThreeRegions) {
  const auto flows = generate_eu_isp({.seed = 42, .n_flows = 400});
  int metro = 0, national = 0, international = 0;
  for (const auto& f : flows) {
    switch (f.region) {
      case geo::Region::Metro: ++metro; break;
      case geo::Region::National: ++national; break;
      case geo::Region::International: ++international; break;
    }
  }
  EXPECT_GT(metro, 0);
  EXPECT_GT(national, 0);
  EXPECT_GT(international, 0);
}

TEST(EuIspGenerator, EndpointsAreEuropean) {
  const auto flows = generate_eu_isp({.seed = 1, .n_flows = 100});
  for (const auto& f : flows) {
    EXPECT_EQ(geo::world_cities()[*f.src_city].continent,
              geo::Continent::Europe);
    EXPECT_EQ(geo::world_cities()[*f.dst_city].continent,
              geo::Continent::Europe);
  }
}

TEST(CdnGenerator, IsLongHaul) {
  const auto flows = generate_cdn({.seed = 42, .n_flows = 400});
  // The CDN's demand-weighted mean distance target is 1988 miles.
  EXPECT_GT(flows.weighted_avg_distance(), 1000.0);
}

TEST(CdnGenerator, RegionsComeFromCityMetadata) {
  const auto flows = generate_cdn({.seed = 5, .n_flows = 200});
  for (const auto& f : flows) {
    EXPECT_EQ(f.region, geo::classify_cities(*f.src_city, *f.dst_city));
  }
}

TEST(Internet2Generator, DistancesAreBackbonePathLengths) {
  const auto flows =
      generate_internet2({.seed = 9, .n_flows = 100, .calibrate_moments = false});
  for (const auto& f : flows) {
    // Raw (uncalibrated) distances must be real routed path lengths
    // between distinct Abilene PoPs: at least a link, at most coast to
    // coast and back.
    EXPECT_GT(f.distance_miles, 100.0);
    EXPECT_LT(f.distance_miles, 6000.0);
    EXPECT_NE(*f.src_city, *f.dst_city);
  }
}

TEST(CalibrateToSpec, FixesMomentsOfArbitraryData) {
  FlowSet fs("custom");
  util::Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    Flow f;
    f.demand_mbps = rng.uniform(1.0, 100.0);
    f.distance_miles = rng.uniform(10.0, 5000.0);
    fs.add(f);
  }
  const DatasetSpec spec{"custom", 500.0, 0.8, 10.0, 2.0};
  calibrate_to_spec(fs, spec);
  const auto stats = compute_stats(fs);
  EXPECT_NEAR(stats.wavg_distance_miles, 500.0, 5.0);
  EXPECT_NEAR(stats.aggregate_gbps, 10.0, 0.1);
  EXPECT_NEAR(stats.cv_distance, 0.8, 0.1);
  EXPECT_NEAR(stats.cv_demand, 2.0, 0.3);
}

TEST(CalibrateToSpec, PreservesRankOrder) {
  FlowSet fs("ranks");
  util::Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    Flow f;
    f.demand_mbps = rng.uniform(1.0, 100.0);
    f.distance_miles = rng.uniform(1.0, 1000.0);
    fs.add(f);
  }
  const auto before = fs.distances();
  calibrate_to_spec(fs, paper_spec(DatasetKind::EuIsp));
  const auto after = fs.distances();
  for (std::size_t i = 0; i < before.size(); ++i) {
    for (std::size_t j = 0; j < before.size(); ++j) {
      if (before[i] < before[j]) {
        EXPECT_LT(after[i], after[j]);
      }
    }
  }
}

TEST(CalibrateToSpec, RejectsTinySets) {
  FlowSet fs;
  Flow f;
  f.demand_mbps = 1.0;
  f.distance_miles = 1.0;
  fs.add(f);
  EXPECT_THROW(calibrate_to_spec(fs, paper_spec(DatasetKind::EuIsp)),
               std::invalid_argument);
}

TEST(PaperSpec, MatchesTable1Constants) {
  EXPECT_DOUBLE_EQ(paper_spec(DatasetKind::EuIsp).wavg_distance_miles, 54.0);
  EXPECT_DOUBLE_EQ(paper_spec(DatasetKind::Cdn).aggregate_gbps, 96.0);
  EXPECT_DOUBLE_EQ(paper_spec(DatasetKind::Internet2).cv_demand, 4.53);
}

TEST(DatasetKindNames, AreHumanReadable) {
  EXPECT_EQ(to_string(DatasetKind::EuIsp), "EU ISP");
  EXPECT_EQ(to_string(DatasetKind::Cdn), "CDN");
  EXPECT_EQ(to_string(DatasetKind::Internet2), "Internet2");
}

}  // namespace
}  // namespace manytiers::workload
