#include "workload/diurnal.hpp"

#include <gtest/gtest.h>

#include "accounting/commit.hpp"
#include "util/stats.hpp"

namespace manytiers::workload {
namespace {

TEST(DiurnalRate, PeaksAtThePeakHour) {
  DiurnalProfile p;
  p.mean_mbps = 100.0;
  p.peak_to_trough = 3.0;
  p.peak_hour = 20.0;
  const double at_peak = diurnal_rate_mbps(p, 20 * 3600);
  const double at_trough = diurnal_rate_mbps(p, 8 * 3600);
  EXPECT_GT(at_peak, at_trough);
  EXPECT_NEAR(at_peak / at_trough, 3.0, 1e-9);
}

TEST(DiurnalRate, MeanOverDayMatchesProfileMean) {
  DiurnalProfile p;
  p.mean_mbps = 250.0;
  p.peak_to_trough = 4.0;
  double total = 0.0;
  const int samples = 288;
  for (int k = 0; k < samples; ++k) {
    total += diurnal_rate_mbps(p, std::uint32_t(k * 300 + 150));
  }
  EXPECT_NEAR(total / samples, 250.0, 0.5);
}

TEST(DiurnalRate, FlatProfileIsConstant) {
  DiurnalProfile p;
  p.peak_to_trough = 1.0;
  EXPECT_DOUBLE_EQ(diurnal_rate_mbps(p, 0), p.mean_mbps);
  EXPECT_DOUBLE_EQ(diurnal_rate_mbps(p, 43200), p.mean_mbps);
}

TEST(DiurnalRate, Validates) {
  DiurnalProfile p;
  EXPECT_THROW(diurnal_rate_mbps(p, 86400), std::invalid_argument);
  p.mean_mbps = 0.0;
  EXPECT_THROW(diurnal_rate_mbps(p, 0), std::invalid_argument);
  DiurnalProfile bad_ratio;
  bad_ratio.peak_to_trough = 0.5;
  EXPECT_THROW(diurnal_rate_mbps(bad_ratio, 0), std::invalid_argument);
  DiurnalProfile bad_hour;
  bad_hour.peak_hour = 24.0;
  EXPECT_THROW(diurnal_rate_mbps(bad_hour, 0), std::invalid_argument);
}

TEST(DiurnalIntervalBytes, ProducesOneSamplePerInterval) {
  DiurnalProfile p;
  util::Rng rng(5);
  const auto samples = diurnal_interval_bytes(p, 2, 300, rng);
  EXPECT_EQ(samples.size(), 2u * 288u);
  for (const auto bytes : samples) EXPECT_GT(bytes, 0u);
}

TEST(DiurnalIntervalBytes, NoiselessSamplesFollowTheCurve) {
  DiurnalProfile p;
  p.mean_mbps = 80.0;
  p.noise_sd = 0.0;
  p.peak_hour = 20.5;  // the midpoint of the 20:00-21:00 interval
  util::Rng rng(5);
  const auto samples = diurnal_interval_bytes(p, 1, 3600, rng);
  ASSERT_EQ(samples.size(), 24u);
  // Hour containing the peak must carry the most bytes.
  std::size_t argmax = 0;
  for (std::size_t h = 0; h < 24; ++h) {
    if (samples[h] > samples[argmax]) argmax = h;
  }
  EXPECT_EQ(argmax, 20u);
}

TEST(DiurnalIntervalBytes, Validates) {
  DiurnalProfile p;
  util::Rng rng(1);
  EXPECT_THROW(diurnal_interval_bytes(p, 0, 300, rng), std::invalid_argument);
  EXPECT_THROW(diurnal_interval_bytes(p, 1, 0, rng), std::invalid_argument);
  EXPECT_THROW(diurnal_interval_bytes(p, 1, 90000, rng),
               std::invalid_argument);
}

TEST(DiurnalIntervalBytes, FeedsBurstMeterSensibly) {
  // A month of diurnal traffic: the 95th percentile sits between the
  // mean and the peak, which is the whole point of burstable billing.
  DiurnalProfile p;
  p.mean_mbps = 200.0;
  p.peak_to_trough = 3.0;
  p.noise_sd = 0.05;
  util::Rng rng(9);
  accounting::BurstMeter meter(300);
  for (const auto bytes : diurnal_interval_bytes(p, 30, 300, rng)) {
    meter.record_interval(bytes);
  }
  const double billable = meter.billable_mbps();
  EXPECT_GT(billable, meter.mean_mbps());
  EXPECT_LT(billable, meter.peak_mbps());
  EXPECT_NEAR(meter.mean_mbps(), 200.0, 10.0);
}

}  // namespace
}  // namespace manytiers::workload
