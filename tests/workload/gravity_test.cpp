#include "workload/gravity.hpp"

#include <gtest/gtest.h>

#include "topology/internet2.hpp"

namespace manytiers::workload {
namespace {

topology::Network triangle() {
  topology::Network net;
  net.add_pop("A", {0.0, 0.0});
  net.add_pop("B", {1.0, 0.0});
  net.add_pop("C", {0.0, 1.0});
  net.add_link(0, 1, 100.0);
  net.add_link(1, 2, 100.0);
  net.add_link(0, 2, 100.0);
  return net;
}

TEST(GravityMatrix, CoversAllOrderedPairs) {
  const auto net = triangle();
  const std::vector<double> masses{1.0, 1.0, 1.0};
  const auto tm = gravity_matrix(net, masses);
  EXPECT_EQ(tm.size(), 6u);  // 3 * 2 ordered pairs
  for (const auto& d : tm) EXPECT_NE(d.src, d.dst);
}

TEST(GravityMatrix, TotalDemandIsExact) {
  const auto net = triangle();
  const std::vector<double> masses{2.0, 1.0, 3.0};
  GravityOptions opts;
  opts.total_demand_mbps = 5000.0;
  const auto tm = gravity_matrix(net, masses, opts);
  double total = 0.0;
  for (const auto& d : tm) total += d.mbps;
  EXPECT_NEAR(total, 5000.0, 1e-9);
}

TEST(GravityMatrix, BiggerMassesAttractMoreTraffic) {
  const auto net = triangle();
  const std::vector<double> masses{10.0, 1.0, 1.0};
  GravityOptions opts;
  opts.distance_exponent = 0.0;  // isolate the mass effect
  const auto tm = gravity_matrix(net, masses, opts);
  double to_a = 0.0, to_b = 0.0;
  for (const auto& d : tm) {
    if (d.dst == 0) to_a += d.mbps;
    if (d.dst == 1) to_b += d.mbps;
  }
  // Traffic to A: (m_B + m_C) m_A = 20 units; to B: (m_A + m_C) m_B = 11.
  EXPECT_NEAR(to_a / to_b, 20.0 / 11.0, 1e-9);
}

TEST(GravityMatrix, DistanceExponentSuppressesLongHaul) {
  const auto net = topology::internet2_network();
  const std::vector<double> masses(net.pop_count(), 1.0);
  GravityOptions near_opts;
  near_opts.distance_exponent = 2.0;
  const auto near_heavy = gravity_matrix(net, masses, near_opts);
  GravityOptions flat_opts;
  flat_opts.distance_exponent = 0.0;
  const auto flat = gravity_matrix(net, masses, flat_opts);
  // Demand-weighted mean path distance must be shorter with beta = 2.
  const auto dist = topology::all_pairs_distances(net);
  const auto weighted_mean = [&](const auto& tm) {
    double num = 0.0, den = 0.0;
    for (const auto& d : tm) {
      num += dist(d.src, d.dst) * d.mbps;
      den += d.mbps;
    }
    return num / den;
  };
  EXPECT_LT(weighted_mean(near_heavy), weighted_mean(flat));
}

TEST(GravityMatrix, FeedsLoadNetwork) {
  const auto net = topology::internet2_network();
  std::vector<double> masses(net.pop_count(), 1.0);
  masses[*net.find_pop("New York")] = 5.0;
  masses[*net.find_pop("Los Angeles")] = 4.0;
  GravityOptions opts;
  opts.total_demand_mbps = 40000.0;
  const auto tm = gravity_matrix(net, masses, opts);
  const auto report = topology::load_network(net, tm);
  EXPECT_EQ(report.unroutable_demands, 0u);
  EXPECT_NEAR(report.total_demand_mbps, 40000.0, 1e-6);
  EXPECT_GT(report.max_utilization, 0.0);
}

TEST(GravityMatrix, Validates) {
  const auto net = triangle();
  EXPECT_THROW(gravity_matrix(net, std::vector<double>{1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(gravity_matrix(net, std::vector<double>{1.0, 0.0, 1.0}),
               std::invalid_argument);
  GravityOptions bad;
  bad.total_demand_mbps = 0.0;
  EXPECT_THROW(gravity_matrix(net, std::vector<double>{1.0, 1.0, 1.0}, bad),
               std::invalid_argument);
  GravityOptions bad2;
  bad2.distance_floor_miles = 0.0;
  EXPECT_THROW(gravity_matrix(net, std::vector<double>{1.0, 1.0, 1.0}, bad2),
               std::invalid_argument);
}

TEST(GravityMatrix, SelfPairsOptIn) {
  const auto net = triangle();
  const std::vector<double> masses{1.0, 1.0, 1.0};
  GravityOptions opts;
  opts.include_self_pairs = true;
  const auto tm = gravity_matrix(net, masses, opts);
  EXPECT_EQ(tm.size(), 9u);
}

}  // namespace
}  // namespace manytiers::workload
