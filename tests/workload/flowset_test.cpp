#include "workload/flowset.hpp"

#include <gtest/gtest.h>

namespace manytiers::workload {
namespace {

Flow make_flow(double demand, double distance) {
  Flow f;
  f.demand_mbps = demand;
  f.distance_miles = distance;
  return f;
}

TEST(FlowSet, StartsEmpty) {
  FlowSet fs("x");
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(fs.size(), 0u);
  EXPECT_EQ(fs.name(), "x");
}

TEST(FlowSet, AddValidatesInputs) {
  FlowSet fs;
  EXPECT_THROW(fs.add(make_flow(0.0, 1.0)), std::invalid_argument);
  EXPECT_THROW(fs.add(make_flow(-1.0, 1.0)), std::invalid_argument);
  EXPECT_THROW(fs.add(make_flow(1.0, -1.0)), std::invalid_argument);
  EXPECT_NO_THROW(fs.add(make_flow(1.0, 0.0)));  // zero distance is legal
}

TEST(FlowSet, ColumnsMatchInsertions) {
  FlowSet fs;
  fs.add(make_flow(10.0, 1.0));
  fs.add(make_flow(20.0, 2.0));
  EXPECT_EQ(fs.demands(), (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(fs.distances(), (std::vector<double>{1.0, 2.0}));
}

TEST(FlowSet, TotalsAndUnits) {
  FlowSet fs;
  fs.add(make_flow(1500.0, 1.0));
  fs.add(make_flow(500.0, 2.0));
  EXPECT_DOUBLE_EQ(fs.total_demand_mbps(), 2000.0);
  EXPECT_DOUBLE_EQ(fs.total_demand_gbps(), 2.0);
}

TEST(FlowSet, WeightedAvgDistanceWeightsByDemand) {
  FlowSet fs;
  fs.add(make_flow(30.0, 100.0));
  fs.add(make_flow(10.0, 20.0));
  EXPECT_DOUBLE_EQ(fs.weighted_avg_distance(),
                   (30.0 * 100.0 + 10.0 * 20.0) / 40.0);
}

TEST(FlowSet, WeightedAvgDistanceThrowsOnEmpty) {
  FlowSet fs;
  EXPECT_THROW(fs.weighted_avg_distance(), std::logic_error);
}

TEST(FlowSet, ScaleDistancesPreservesDemands) {
  FlowSet fs;
  fs.add(make_flow(10.0, 5.0));
  fs.scale_distances(3.0);
  EXPECT_DOUBLE_EQ(fs[0].distance_miles, 15.0);
  EXPECT_DOUBLE_EQ(fs[0].demand_mbps, 10.0);
  EXPECT_THROW(fs.scale_distances(0.0), std::invalid_argument);
}

TEST(FlowSet, ScaleDemands) {
  FlowSet fs;
  fs.add(make_flow(10.0, 5.0));
  fs.scale_demands(0.5);
  EXPECT_DOUBLE_EQ(fs[0].demand_mbps, 5.0);
  EXPECT_THROW(fs.scale_demands(-1.0), std::invalid_argument);
}

TEST(FlowSet, ClassifyRegionsByDistanceUsesPaperThresholds) {
  FlowSet fs;
  fs.add(make_flow(1.0, 5.0));
  fs.add(make_flow(1.0, 50.0));
  fs.add(make_flow(1.0, 500.0));
  fs.classify_regions_by_distance();
  EXPECT_EQ(fs[0].region, geo::Region::Metro);
  EXPECT_EQ(fs[1].region, geo::Region::National);
  EXPECT_EQ(fs[2].region, geo::Region::International);
}

TEST(FlowSet, RangeForIteration) {
  FlowSet fs;
  fs.add(make_flow(1.0, 1.0));
  fs.add(make_flow(2.0, 2.0));
  double total = 0.0;
  for (const auto& f : fs) total += f.demand_mbps;
  EXPECT_DOUBLE_EQ(total, 3.0);
}

}  // namespace
}  // namespace manytiers::workload
