#include "workload/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "geo/geoip.hpp"

#include "workload/generators.hpp"

namespace manytiers::workload {
namespace {

FlowSet sample_set() {
  FlowSet fs("sample");
  Flow a;
  a.demand_mbps = 900.5;
  a.distance_miles = 12.0;
  a.region = geo::Region::Metro;
  a.dest_type = DestType::OnNet;
  a.src_ip = geo::parse_ipv4("10.0.0.1");
  a.dst_ip = geo::parse_ipv4("100.1.2.3");
  fs.add(a);
  Flow b;
  b.demand_mbps = 3.25;
  b.distance_miles = 4800.0;
  b.region = geo::Region::International;
  b.dest_type = DestType::OffNet;
  fs.add(b);
  return fs;
}

TEST(FlowSetCsv, WritesHeaderAndRows) {
  const std::string csv = to_csv(sample_set());
  EXPECT_NE(csv.find("demand_mbps,distance_miles,region,dest_type"),
            std::string::npos);
  EXPECT_NE(csv.find("900.5,12,metro,on-net,10.0.0.1,100.1.2.3"),
            std::string::npos);
  EXPECT_NE(csv.find("3.25,4800,international,off-net,,"), std::string::npos);
}

TEST(FlowSetCsv, RoundTripsAllFields) {
  const auto original = sample_set();
  const auto parsed = from_csv(to_csv(original), "sample");
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.name(), "sample");
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].demand_mbps, original[i].demand_mbps);
    EXPECT_DOUBLE_EQ(parsed[i].distance_miles, original[i].distance_miles);
    EXPECT_EQ(parsed[i].region, original[i].region);
    EXPECT_EQ(parsed[i].dest_type, original[i].dest_type);
    EXPECT_EQ(parsed[i].src_ip, original[i].src_ip);
    EXPECT_EQ(parsed[i].dst_ip, original[i].dst_ip);
  }
}

TEST(FlowSetCsv, RoundTripsAGeneratedDataset) {
  const auto flows = generate_eu_isp({.seed = 8, .n_flows = 120});
  const auto parsed = from_csv(to_csv(flows), flows.name());
  ASSERT_EQ(parsed.size(), flows.size());
  EXPECT_NEAR(parsed.total_demand_mbps(), flows.total_demand_mbps(), 1e-6);
  EXPECT_NEAR(parsed.weighted_avg_distance(), flows.weighted_avg_distance(),
              1e-6);
}

TEST(FlowSetCsv, EmptySetWritesJustTheHeader) {
  const FlowSet empty("e");
  const auto parsed = from_csv(to_csv(empty));
  EXPECT_TRUE(parsed.empty());
}

TEST(FlowSetCsv, SkipsBlankLines) {
  const auto parsed = from_csv(
      "demand_mbps,distance_miles,region,dest_type,src_ip,dst_ip\n"
      "\n"
      "1.0,2.0,metro,on-net,,\n"
      "\n");
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(FlowSetCsv, RejectsMissingHeader) {
  EXPECT_THROW(from_csv("1.0,2.0,metro,on-net,,\n"), std::invalid_argument);
  EXPECT_THROW(from_csv(""), std::invalid_argument);
}

TEST(FlowSetCsv, RejectsMalformedRowsWithLineNumbers) {
  const std::string header =
      "demand_mbps,distance_miles,region,dest_type,src_ip,dst_ip\n";
  const auto expect_error = [&](const std::string& row,
                                const std::string& fragment) {
    try {
      from_csv(header + row + "\n");
      FAIL() << "expected throw for: " << row;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("1.0,2.0,metro,on-net,", "expected 6 fields");
  expect_error("abc,2.0,metro,on-net,,", "bad demand");
  expect_error("1.0,xyz,metro,on-net,,", "bad distance");
  expect_error("1.0,2.0,galactic,on-net,,", "unknown region");
  expect_error("1.0,2.0,metro,sideways,,", "unknown dest_type");
  expect_error("0.0,2.0,metro,on-net,,", "demand");   // FlowSet::add rule
  expect_error("1.0,-2.0,metro,on-net,,", "distance");
}

TEST(FlowSetCsv, ParsedSetsFeedTheCalibrationPipeline) {
  const auto flows = from_csv(
      "demand_mbps,distance_miles,region,dest_type,src_ip,dst_ip\n"
      "100,5,metro,on-net,,\n"
      "50,80,national,off-net,,\n"
      "10,900,international,off-net,,\n");
  EXPECT_EQ(flows.size(), 3u);
  EXPECT_DOUBLE_EQ(flows.total_demand_mbps(), 160.0);
}

}  // namespace
}  // namespace manytiers::workload
