// End-to-end pipeline tests: synthetic traffic -> NetFlow -> collection ->
// flow set -> calibration -> bundling -> pricing -> accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "accounting/billing.hpp"
#include "accounting/flow_acct.hpp"
#include "geo/cities.hpp"
#include "accounting/link_acct.hpp"
#include "netflow/collector.hpp"
#include "netflow/exporter.hpp"
#include "pricing/counterfactual.hpp"
#include "topology/dijkstra.hpp"
#include "topology/internet2.hpp"
#include "workload/generators.hpp"
#include "workload/table1.hpp"

namespace manytiers {
namespace {

TEST(Pipeline, NetflowIngestReproducesGeneratedDemand) {
  // Turn a generated flow set into ground-truth traffic, export it with
  // duplication across a 3-router path, collect, and compare demands.
  const auto flows = workload::generate_eu_isp({.seed = 3, .n_flows = 40});
  const std::uint32_t window = 3600;
  std::vector<netflow::GroundTruthFlow> truth;
  std::vector<std::vector<netflow::RouterId>> paths;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    netflow::GroundTruthFlow gt;
    gt.key.src_ip = flows[i].src_ip;
    gt.key.dst_ip = flows[i].dst_ip;
    gt.key.src_port = std::uint16_t(40000 + i);
    gt.key.dst_port = 443;
    gt.bytes =
        std::uint64_t(flows[i].demand_mbps * 1e6 / 8.0 * double(window));
    gt.packets = std::max<std::uint64_t>(1, gt.bytes / 1400);
    truth.push_back(gt);
    paths.push_back({1, 2, 3});
  }
  netflow::SampledExporter exporter(
      {.sampling_rate = 1, .window_seconds = window}, util::Rng(5));
  netflow::Collector collector(1);
  collector.ingest(exporter.export_trace(truth, paths));
  EXPECT_EQ(collector.flow_count(), flows.size());
  const double measured_gbps =
      netflow::bytes_to_mbps(collector.total_estimated_bytes(), window) /
      1000.0;
  EXPECT_NEAR(measured_gbps, flows.total_demand_gbps(),
              0.01 * flows.total_demand_gbps());
}

TEST(Pipeline, Internet2FlowsRouteOverBackbone) {
  const auto net = topology::internet2_network();
  const auto flows = workload::generate_internet2(
      {.seed = 4, .n_flows = 30, .calibrate_moments = false});
  for (const auto& f : flows) {
    const auto src = net.find_pop(
        std::string(geo::world_cities()[*f.src_city].name));
    const auto dst = net.find_pop(
        std::string(geo::world_cities()[*f.dst_city].name));
    ASSERT_TRUE(src && dst);
    EXPECT_NEAR(f.distance_miles, topology::shortest_distance(net, *src, *dst),
                1e-6);
  }
}

TEST(Pipeline, FullCounterfactualOnAllDatasetsAndCostModels) {
  // Smoke the full Fig. 7 pipeline on every dataset x cost model combo.
  for (const auto kind :
       {workload::DatasetKind::EuIsp, workload::DatasetKind::Cdn,
        workload::DatasetKind::Internet2}) {
    const auto flows = workload::generate_dataset(kind, {.seed = 9, .n_flows = 80});
    std::vector<std::unique_ptr<cost::CostModel>> models;
    models.push_back(cost::make_linear_cost(0.2));
    models.push_back(cost::make_concave_cost(0.2));
    models.push_back(cost::make_regional_cost(1.1));
    models.push_back(cost::make_dest_type_cost(0.1));
    for (const auto& model : models) {
      const auto m =
          pricing::Market::calibrate(flows, pricing::DemandSpec{}, *model, 20.0);
      const auto res = pricing::run_strategy(m, pricing::Strategy::Optimal, 3);
      EXPECT_GE(res.capture, -1e-9)
          << to_string(kind) << " / " << model->name();
      EXPECT_LE(res.capture, 1.0 + 1e-9)
          << to_string(kind) << " / " << model->name();
    }
  }
}

TEST(Pipeline, TieredBillMatchesBundlePricesEndToEnd) {
  // Build a 3-tier market, announce tier-tagged routes for each bundle,
  // push the flows' traffic through link accounting, and check the bill
  // uses the engine's bundle prices.
  const auto flows = workload::generate_eu_isp({.seed = 10, .n_flows = 30});
  const auto cost_model = cost::make_linear_cost(0.2);
  const auto market =
      pricing::Market::calibrate(flows, pricing::DemandSpec{}, *cost_model,
                                 20.0);
  const auto res =
      pricing::run_strategy(market, pricing::Strategy::ProfitWeighted, 3);
  const auto& bundles = res.pricing.bundles;

  // Announce a host route per destination, tagged with its bundle id.
  accounting::Rib rib;
  accounting::RatePlan plan;
  for (std::size_t b = 0; b < bundles.size(); ++b) {
    plan.rates.push_back(
        {std::uint16_t(b), res.pricing.bundle_prices[b]});
    for (const std::size_t i : bundles[b]) {
      accounting::Route r;
      r.prefix = geo::Prefix{market.flows()[i].dst_ip, 32};
      r.tag = accounting::TierTag{65000, std::uint16_t(b)};
      rib.add(r);
    }
  }
  accounting::LinkAccounting acct(rib);
  const std::uint32_t window = 3600;
  for (std::size_t i = 0; i < market.size(); ++i) {
    const auto bytes = std::uint64_t(market.flows()[i].demand_mbps * 1e6 /
                                     8.0 * double(window));
    acct.send(market.flows()[i].dst_ip, bytes);
  }
  EXPECT_EQ(acct.unrouted_bytes(), 0u);
  const auto invoice = accounting::tiered_invoice(acct.poll(), window, plan);
  // The invoice revenue equals sum(q_i * bundle price of i) at observed
  // demands (duplicate dst_ips across bundles could perturb this; the
  // generator salts IPs per flow so they are unique).
  double expected = 0.0;
  for (std::size_t b = 0; b < bundles.size(); ++b) {
    for (const std::size_t i : bundles[b]) {
      expected += market.flows()[i].demand_mbps * res.pricing.bundle_prices[b];
    }
  }
  EXPECT_NEAR(invoice.total, expected, 0.01 * expected);
}

TEST(Pipeline, Table1StatsAreReproducible) {
  std::vector<workload::DatasetStats> stats;
  for (const auto kind :
       {workload::DatasetKind::EuIsp, workload::DatasetKind::Cdn,
        workload::DatasetKind::Internet2}) {
    stats.push_back(workload::compute_stats(
        workload::generate_dataset(kind, {.seed = 42, .n_flows = 400})));
  }
  EXPECT_NEAR(stats[0].wavg_distance_miles, 54.0, 2.0);
  EXPECT_NEAR(stats[1].wavg_distance_miles, 1988.0, 40.0);
  EXPECT_NEAR(stats[2].wavg_distance_miles, 660.0, 15.0);
  EXPECT_NEAR(stats[0].aggregate_gbps, 37.0, 0.5);
  EXPECT_NEAR(stats[1].aggregate_gbps, 96.0, 1.0);
  EXPECT_NEAR(stats[2].aggregate_gbps, 4.0, 0.1);
}

}  // namespace
}  // namespace manytiers
