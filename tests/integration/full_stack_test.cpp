// The complete §5 story in one test: calibrate a market, compute tiers,
// announce them as real BGP UPDATE bytes, build the customer's RIB from
// the decoded wire messages, account a day of traffic both ways, bill
// it, and let the customer's egress planner react to the tags.
#include <gtest/gtest.h>

#include "accounting/bgp_codec.hpp"
#include "accounting/billing.hpp"
#include "accounting/flow_acct.hpp"
#include "accounting/link_acct.hpp"
#include "accounting/policy.hpp"
#include "accounting/session.hpp"
#include "netflow/exporter.hpp"
#include "pricing/counterfactual.hpp"
#include "workload/generators.hpp"

namespace manytiers {
namespace {

TEST(FullStack, PricingToWireToAccountingToBilling) {
  // 1. Calibrate and pick 3 tiers.
  const auto flows = workload::generate_eu_isp({.seed = 12, .n_flows = 40});
  const auto cost_model = cost::make_linear_cost(0.2);
  const auto market = pricing::Market::calibrate(
      flows, pricing::DemandSpec{}, *cost_model, 20.0);
  const auto plan =
      pricing::run_strategy(market, pricing::Strategy::Optimal, 3);
  ASSERT_EQ(plan.pricing.bundles.size(), 3u);

  // 2. Render the tier plan as session updates, then as BGP wire bytes.
  std::vector<geo::Prefix> prefixes;
  for (std::size_t i = 0; i < market.size(); ++i) {
    prefixes.push_back(geo::Prefix{market.flows()[i].dst_ip, 32});
  }
  const auto updates =
      accounting::announcements_for_tiers(plan.pricing, prefixes, 65000);
  accounting::BgpSession session("customer-edge");
  session.establish();
  std::size_t wire_bytes = 0;
  for (const auto& update : updates) {
    for (const auto& wire : accounting::encode_updates(update, {})) {
      wire_bytes += wire.size();
      session.receive(accounting::decode_update(wire));
    }
  }
  EXPECT_GT(wire_bytes, 0u);
  ASSERT_EQ(session.rib().size(), market.size());

  // 3. Push a day of traffic through both accounting implementations
  //    against the session-learned RIB.
  const auto& rib = session.rib();
  accounting::RatePlan rates;
  for (std::size_t b = 0; b < plan.pricing.bundles.size(); ++b) {
    rates.rates.push_back(
        {std::uint16_t(b), plan.pricing.bundle_prices[b]});
  }
  accounting::LinkAccounting link(rib);
  accounting::FlowAccounting flow(rib, 1);
  netflow::SampledExporter exporter(
      {.sampling_rate = 1, .window_seconds = 86400}, util::Rng(3));
  for (std::size_t i = 0; i < market.size(); ++i) {
    const auto bytes = std::uint64_t(market.flows()[i].demand_mbps * 1e6 /
                                     8.0 * 86400.0);
    link.send(market.flows()[i].dst_ip, bytes);
    netflow::GroundTruthFlow gt;
    gt.key.src_ip = market.flows()[i].src_ip;
    gt.key.dst_ip = market.flows()[i].dst_ip;
    gt.key.src_port = std::uint16_t(1000 + i);
    gt.bytes = bytes;
    gt.packets = std::max<std::uint64_t>(1, bytes / 1400);
    const std::vector<netflow::RouterId> path{1};
    flow.ingest(exporter.export_flow(gt, path));
  }
  EXPECT_EQ(link.unrouted_bytes(), 0u);
  EXPECT_EQ(link.session_count(), 3u);

  // 4. Both accounting paths produce the same invoice at sampling rate 1,
  //    and its revenue matches the pricing engine's model revenue.
  const auto link_invoice =
      accounting::tiered_invoice(link.poll(), 86400, rates);
  const auto flow_invoice =
      accounting::tiered_invoice(flow.usage(), 86400, rates);
  EXPECT_NEAR(link_invoice.total, flow_invoice.total,
              1e-6 * link_invoice.total);
  double model_revenue = 0.0;
  for (std::size_t i = 0; i < market.size(); ++i) {
    model_revenue +=
        market.flows()[i].demand_mbps * plan.pricing.flow_prices[i];
  }
  EXPECT_NEAR(link_invoice.total, model_revenue, 0.01 * model_revenue);

  // 5. The customer's egress planner consumes the same RIB: with only one
  //    upstream PoP every decision is hot-potato at the tier price.
  accounting::EgressPlanner planner;
  planner.add_egress({"local", &rib, &rates, 0.0});
  const auto decision = planner.plan(market.flows()[0].dst_ip);
  ASSERT_TRUE(decision.has_value());
  EXPECT_FALSE(decision->cold_potato);
  const auto tier = rib.tier_of(market.flows()[0].dst_ip);
  ASSERT_TRUE(tier.has_value());
  EXPECT_DOUBLE_EQ(decision->transit_price_per_mbps,
                   plan.pricing.bundle_prices[*tier]);
}

TEST(FullStack, WithdrawingATierReroutesItsTraffic) {
  // Announce two tiers from two PoPs; withdrawing the cheap tier at the
  // local PoP flips the planner to the remote PoP (cold potato).
  accounting::BgpSession local("pop-local"), remote("pop-remote");
  local.establish();
  remote.establish();
  accounting::UpdateMessage announce;
  accounting::Route cheap;
  cheap.prefix = geo::parse_prefix("110.0.0.0/8");
  cheap.tag = accounting::TierTag{65000, 1};
  announce.announce.push_back(cheap);
  for (const auto& wire : accounting::encode_updates(announce, {})) {
    local.receive(accounting::decode_update(wire));
    remote.receive(accounting::decode_update(wire));
  }
  const accounting::RatePlan rates{{{1, 5.0}}};
  accounting::EgressPlanner planner;
  planner.add_egress({"local", &local.rib(), &rates, 0.0});
  planner.add_egress({"remote", &remote.rib(), &rates, 2.0});
  EXPECT_FALSE(planner.plan(geo::parse_ipv4("110.1.1.1"))->cold_potato);

  // Withdraw at the local PoP via the wire.
  accounting::UpdateMessage withdraw;
  withdraw.withdraw.push_back(geo::parse_prefix("110.0.0.0/8"));
  for (const auto& wire : accounting::encode_updates(withdraw, {})) {
    local.receive(accounting::decode_update(wire));
  }
  const auto after = planner.plan(geo::parse_ipv4("110.1.1.1"));
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->cold_potato);
  EXPECT_EQ(after->pop_name, "remote");
}

}  // namespace
}  // namespace manytiers
