// Shape-level reproduction checks for the paper's evaluation claims.
// Absolute numbers depend on the synthetic datasets; these tests assert
// the *qualitative* results the paper reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "demand/ced.hpp"
#include "pricing/counterfactual.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

namespace manytiers {
namespace {

using pricing::DemandSpec;
using pricing::Market;
using pricing::Strategy;

Market make_market(workload::DatasetKind kind, demand::DemandKind demand_kind,
                   double theta = 0.2, double alpha = 1.1, double p0 = 20.0) {
  const auto flows = workload::generate_dataset(kind, {.seed = 42, .n_flows = 150});
  const auto cost = cost::make_linear_cost(theta);
  DemandSpec spec;
  spec.kind = demand_kind;
  spec.alpha = alpha;
  return Market::calibrate(flows, spec, *cost, p0);
}

// --- Paper headline (§1, §4.2.2) ---

TEST(PaperResults, ThreeToFourOptimalBundlesCapture90Percent) {
  for (const auto kind :
       {workload::DatasetKind::EuIsp, workload::DatasetKind::Cdn,
        workload::DatasetKind::Internet2}) {
    for (const auto dk : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
      const auto m = make_market(kind, dk);
      const double c4 = run_strategy(m, Strategy::Optimal, 4).capture;
      EXPECT_GE(c4, 0.88) << to_string(kind);
    }
  }
}

TEST(PaperResults, ProfitWeightedIsNearOptimal) {
  // §4.2.2: "the profit-weighted bundling heuristic is almost as good as
  // the optimal bundling."
  for (const auto dk : {demand::DemandKind::ConstantElasticity,
                        demand::DemandKind::Logit}) {
    const auto m = make_market(workload::DatasetKind::EuIsp, dk);
    for (std::size_t b = 2; b <= 5; ++b) {
      const double opt = run_strategy(m, Strategy::Optimal, b).capture;
      const double pw = run_strategy(m, Strategy::ProfitWeighted, b).capture;
      EXPECT_GE(pw, opt - 0.25) << b << " bundles";
    }
  }
}

TEST(PaperResults, NaiveDivisionsNeedMoreBundlesThanOptimal) {
  // §1/§4.2: a naive division (cost or index based) captures less profit
  // at small bundle counts than optimal bundling.
  const auto m =
      make_market(workload::DatasetKind::Cdn, demand::DemandKind::ConstantElasticity);
  const double opt2 = run_strategy(m, Strategy::Optimal, 2).capture;
  EXPECT_GT(opt2, run_strategy(m, Strategy::CostDivision, 2).capture - 1e-9);
  EXPECT_GT(opt2, run_strategy(m, Strategy::IndexDivision, 2).capture - 1e-9);
}

TEST(PaperResults, LogitSaturatesFasterThanCed) {
  // §4.2.2: "maximum profit capture occurs more quickly in the logit
  // model."
  const auto ced = make_market(workload::DatasetKind::EuIsp,
                               demand::DemandKind::ConstantElasticity);
  const auto logit =
      make_market(workload::DatasetKind::EuIsp, demand::DemandKind::Logit);
  const double ced2 = run_strategy(ced, Strategy::Optimal, 2).capture;
  const double logit2 = run_strategy(logit, Strategy::Optimal, 2).capture;
  EXPECT_GE(logit2, ced2 - 0.05);
}

// --- Cost-model sensitivity (§4.3.1) ---

TEST(PaperResults, HigherBaseCostLowersAttainableProfitHeadroom) {
  // Fig. 10: raising theta (base cost) shrinks the CV of cost and with it
  // the profit headroom of tiered pricing. We compare max/blended profit
  // ratios across theta.
  double prev_ratio = 1e300;
  for (const double theta : {0.1, 0.2, 0.3}) {
    const auto m = make_market(workload::DatasetKind::EuIsp,
                               demand::DemandKind::ConstantElasticity, theta);
    const double ratio = pricing::max_profit(m) / pricing::blended_profit(m);
    EXPECT_LT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
}

TEST(PaperResults, HeadroomTracksCvOfCost) {
  // The mechanism behind Figs. 10-11: whichever cost model produces the
  // higher coefficient of variation of cost offers the larger headroom
  // for tiered pricing (the paper attributes the concave model's faster
  // profit decline to its lower CV of cost).
  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 150});
  for (const bool concave : {false, true}) {
    std::vector<std::pair<double, double>> cv_vs_headroom;  // (cv, ratio)
    for (const double theta : {0.05, 0.2, 0.5}) {
      const auto cost = concave ? cost::make_concave_cost(theta)
                                : cost::make_linear_cost(theta);
      const auto m = Market::calibrate(flows, DemandSpec{}, *cost, 20.0);
      const double cv = util::coefficient_of_variation(m.costs());
      const double ratio =
          pricing::max_profit(m) / pricing::blended_profit(m);
      cv_vs_headroom.emplace_back(cv, ratio);
    }
    // Raising theta must lower the CV of cost, and headroom must follow.
    std::sort(cv_vs_headroom.begin(), cv_vs_headroom.end());
    for (std::size_t i = 1; i < cv_vs_headroom.size(); ++i) {
      EXPECT_GE(cv_vs_headroom[i].second, cv_vs_headroom[i - 1].second - 1e-9)
          << (concave ? "concave" : "linear") << " cv "
          << cv_vs_headroom[i].first;
    }
  }
}

TEST(PaperResults, RegionalThetaRaisesHeadroom) {
  // Fig. 12: higher theta -> higher CV of cost -> more profit headroom.
  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 150});
  double prev = -1e300;
  for (const double theta : {1.0, 1.1, 1.2}) {
    const auto cost = cost::make_regional_cost(theta);
    const auto m = Market::calibrate(flows, DemandSpec{}, *cost, 20.0);
    const double ratio = pricing::max_profit(m) / pricing::blended_profit(m);
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
}

TEST(PaperResults, TwoBundlesSufficeForTwoCostClasses) {
  // Fig. 13: with on-net/off-net (two classes), two class-aware bundles
  // capture most of the profit.
  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 150});
  const auto cost = cost::make_dest_type_cost(0.1);
  const auto m = Market::calibrate(flows, DemandSpec{}, *cost, 20.0);
  const double c2 =
      run_strategy(m, Strategy::ClassAwareProfitWeighted, 2).capture;
  EXPECT_GE(c2, 0.5);
  const double c4 =
      run_strategy(m, Strategy::ClassAwareProfitWeighted, 4).capture;
  EXPECT_GE(c4, c2 - 1e-9);
}

// --- Parameter robustness (§4.3.2, Figs. 14-16) ---

TEST(PaperResults, OptimalCaptureRobustToAlpha) {
  // Fig. 14: min capture at 4 bundles stays high across alpha in [1, 10].
  double min_capture = 1.0;
  for (const double alpha : {1.05, 1.5, 2.0, 4.0, 10.0}) {
    const auto m = make_market(workload::DatasetKind::EuIsp,
                               demand::DemandKind::ConstantElasticity, 0.2,
                               alpha);
    min_capture =
        std::min(min_capture, run_strategy(m, Strategy::Optimal, 4).capture);
  }
  EXPECT_GE(min_capture, 0.7);
}

TEST(PaperResults, OptimalCaptureRobustToBlendedRate) {
  // Fig. 15: capture is insensitive to the starting blended price P0.
  double min_capture = 1.0;
  for (const double p0 : {5.0, 10.0, 20.0, 30.0}) {
    const auto m = make_market(workload::DatasetKind::EuIsp,
                               demand::DemandKind::ConstantElasticity, 0.2,
                               1.1, p0);
    min_capture =
        std::min(min_capture, run_strategy(m, Strategy::Optimal, 4).capture);
  }
  EXPECT_GE(min_capture, 0.7);
}

TEST(PaperResults, CedCaptureIsExactlyP0Independent) {
  // Stronger than the paper: under CED, valuations scale with P0 and
  // costs rescale through gamma, so capture curves are *identical*
  // across P0.
  const auto a = make_market(workload::DatasetKind::EuIsp,
                             demand::DemandKind::ConstantElasticity, 0.2, 1.1,
                             10.0);
  const auto b = make_market(workload::DatasetKind::EuIsp,
                             demand::DemandKind::ConstantElasticity, 0.2, 1.1,
                             30.0);
  for (std::size_t n = 2; n <= 5; ++n) {
    EXPECT_NEAR(run_strategy(a, Strategy::Optimal, n).capture,
                run_strategy(b, Strategy::Optimal, n).capture, 1e-6);
  }
}

TEST(PaperResults, LogitCaptureRobustToS0) {
  // Fig. 16: capture at 4 bundles across s0 in (0, 0.9).
  double min_capture = 1.0;
  for (const double s0 : {0.05, 0.2, 0.5, 0.9}) {
    const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 150});
    const auto cost = cost::make_linear_cost(0.2);
    DemandSpec spec;
    spec.kind = demand::DemandKind::Logit;
    spec.alpha = 1.1;
    spec.no_purchase_share = s0;
    const auto m = Market::calibrate(flows, spec, *cost, 20.0);
    min_capture =
        std::min(min_capture, run_strategy(m, Strategy::Optimal, 4).capture);
  }
  EXPECT_GE(min_capture, 0.7);
}

// --- Market efficiency example (Fig. 1) ---

TEST(PaperResults, Figure1TieredPricingBeatsBlended) {
  // Two flows with costs 1 and 0.5 and CED demand: tiered prices beat the
  // blended optimum for the ISP, as in Fig. 1 (profit 2.08 -> 2.25).
  const demand::CedModel model(2.0);
  const std::vector<double> v{2.0, 2.0};  // symmetric demands
  const std::vector<double> c{1.0, 0.5};
  const double blended = model.bundle_price(v, c);
  const double profit_blended =
      model.total_profit(v, c, std::vector<double>{blended, blended});
  const double profit_tiered =
      model.total_profit(v, c,
                         std::vector<double>{model.optimal_price(1.0),
                                             model.optimal_price(0.5)});
  EXPECT_GT(profit_tiered, profit_blended);
}

}  // namespace
}  // namespace manytiers
