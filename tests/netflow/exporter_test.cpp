#include "netflow/exporter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace manytiers::netflow {
namespace {

GroundTruthFlow make_flow(std::uint64_t bytes, std::uint64_t packets) {
  GroundTruthFlow f;
  f.key = FlowKey{0x0a000001, 0x0a000002, 1234, 80, 6};
  f.bytes = bytes;
  f.packets = packets;
  return f;
}

TEST(SampledExporter, Rate1ExportsExactCounts) {
  SampledExporter exporter({.sampling_rate = 1, .window_seconds = 60},
                           util::Rng(1));
  const auto flow = make_flow(150000, 100);
  const std::vector<RouterId> path{1, 2, 3};
  const auto records = exporter.export_flow(flow, path);
  ASSERT_EQ(records.size(), 3u);
  for (const auto& r : records) {
    EXPECT_EQ(r.sampled_packets, 100u);
    EXPECT_EQ(r.sampled_bytes, 150000u);
    EXPECT_EQ(r.key, flow.key);
  }
}

TEST(SampledExporter, RecordsCarryRouterIds) {
  SampledExporter exporter({.sampling_rate = 1, .window_seconds = 60},
                           util::Rng(1));
  const std::vector<RouterId> path{7, 9};
  const auto records = exporter.export_flow(make_flow(1000, 10), path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].router, 7u);
  EXPECT_EQ(records[1].router, 9u);
}

TEST(SampledExporter, SamplingThinsPacketCounts) {
  SampledExporter exporter({.sampling_rate = 100, .window_seconds = 60},
                           util::Rng(2));
  const auto flow = make_flow(15000000, 10000);
  const std::vector<RouterId> path{1};
  const auto records = exporter.export_flow(flow, path);
  ASSERT_EQ(records.size(), 1u);
  // E[sampled] = 100; binomial sd = sqrt(10000 * .01 * .99) ~ 10.
  EXPECT_NEAR(double(records[0].sampled_packets), 100.0, 60.0);
  EXPECT_LT(records[0].sampled_bytes, flow.bytes);
}

TEST(SampledExporter, ScaledEstimateIsUnbiased) {
  SampledExporter exporter({.sampling_rate = 10, .window_seconds = 60},
                           util::Rng(3));
  const auto flow = make_flow(1500000, 1000);
  const std::vector<RouterId> path{1};
  double total = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto records = exporter.export_flow(flow, path);
    if (!records.empty()) total += double(records[0].sampled_bytes) * 10.0;
  }
  EXPECT_NEAR(total / trials, double(flow.bytes), 0.05 * double(flow.bytes));
}

TEST(SampledExporter, TinyFlowsCanVanish) {
  SampledExporter exporter({.sampling_rate = 1000, .window_seconds = 60},
                           util::Rng(4));
  const auto flow = make_flow(40, 1);  // one packet, 1-in-1000 sampling
  const std::vector<RouterId> path{1};
  int exported = 0;
  for (int t = 0; t < 200; ++t) {
    exported += int(exporter.export_flow(flow, path).size());
  }
  EXPECT_LT(exported, 10);  // nearly always unsampled
}

TEST(SampledExporter, ExportTraceConcatenates) {
  SampledExporter exporter({.sampling_rate = 1, .window_seconds = 60},
                           util::Rng(5));
  std::vector<GroundTruthFlow> flows{make_flow(1000, 10), make_flow(2000, 20)};
  flows[1].key.dst_port = 443;
  const std::vector<std::vector<RouterId>> paths{{1}, {1, 2}};
  const auto records = exporter.export_trace(flows, paths);
  EXPECT_EQ(records.size(), 3u);
}

TEST(SampledExporter, ValidatesConfigAndInput) {
  EXPECT_THROW(
      SampledExporter({.sampling_rate = 0, .window_seconds = 60}, util::Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(
      SampledExporter({.sampling_rate = 1, .window_seconds = 0}, util::Rng(1)),
      std::invalid_argument);
  SampledExporter exporter({.sampling_rate = 1, .window_seconds = 60},
                           util::Rng(1));
  const std::vector<RouterId> path{1};
  EXPECT_THROW(exporter.export_flow(make_flow(100, 0), path),
               std::invalid_argument);
  EXPECT_THROW(exporter.export_flow(make_flow(1, 10), path),
               std::invalid_argument);
  const std::vector<GroundTruthFlow> flows{make_flow(1000, 10)};
  const std::vector<std::vector<RouterId>> paths;
  EXPECT_THROW(exporter.export_trace(flows, paths), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::netflow
