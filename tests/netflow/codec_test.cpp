#include "netflow/codec.hpp"

#include <gtest/gtest.h>

#include "netflow/collector.hpp"
#include "netflow/exporter.hpp"

namespace manytiers::netflow {
namespace {

FlowRecord sample_record(std::uint32_t dst = 0x64010203) {
  FlowRecord r;
  r.key = FlowKey{0x0a000001, dst, 40001, 443, 6};
  r.router = 3;
  r.sampled_bytes = 123456;
  r.sampled_packets = 789;
  r.first_seen_s = 10;
  r.last_seen_s = 86400;
  return r;
}

TEST(V5Codec, PacketSizeMatchesSpec) {
  const std::vector<FlowRecord> records{sample_record(), sample_record(2)};
  const auto bytes = encode_v5_packet(records, {});
  EXPECT_EQ(bytes.size(), kV5HeaderBytes + 2 * kV5RecordBytes);
}

TEST(V5Codec, HeaderGoldenBytes) {
  const std::vector<FlowRecord> records{sample_record()};
  V5PacketOptions opts;
  opts.unix_secs = 0x5f000001;
  opts.flow_sequence = 0x00000102;
  opts.engine_id = 9;
  opts.sampling_rate = 100;
  const auto bytes = encode_v5_packet(records, opts);
  EXPECT_EQ(bytes[0], 0x00);  // version hi
  EXPECT_EQ(bytes[1], 0x05);  // version lo
  EXPECT_EQ(bytes[2], 0x00);  // count hi
  EXPECT_EQ(bytes[3], 0x01);  // count lo
  EXPECT_EQ(bytes[8], 0x5f);  // unix_secs big-endian
  EXPECT_EQ(bytes[11], 0x01);
  EXPECT_EQ(bytes[19], 0x02);  // flow_sequence low byte
  EXPECT_EQ(bytes[21], 9);     // engine_id
  // sampling: mode 01 in the top 2 bits, interval 100 in the low 14.
  EXPECT_EQ(bytes[22], 0x40);
  EXPECT_EQ(bytes[23], 100);
}

TEST(V5Codec, RecordFieldsAreBigEndian) {
  const std::vector<FlowRecord> records{sample_record()};
  const auto bytes = encode_v5_packet(records, {});
  const std::size_t at = kV5HeaderBytes;
  // srcaddr 10.0.0.1.
  EXPECT_EQ(bytes[at + 0], 10);
  EXPECT_EQ(bytes[at + 3], 1);
  // dstaddr 100.1.2.3.
  EXPECT_EQ(bytes[at + 4], 100);
  EXPECT_EQ(bytes[at + 7], 3);
  // protocol at offset 38.
  EXPECT_EQ(bytes[at + 38], 6);
}

TEST(V5Codec, RoundTripsEveryField) {
  const std::vector<FlowRecord> records{sample_record(), sample_record(7)};
  V5PacketOptions opts;
  opts.unix_secs = 1234567;
  opts.flow_sequence = 42;
  opts.engine_id = 5;
  opts.sampling_rate = 512;
  const auto bytes = encode_v5_packet(records, opts);
  const auto decoded = decode_v5_packet(bytes);
  EXPECT_EQ(decoded.header.unix_secs, 1234567u);
  EXPECT_EQ(decoded.header.flow_sequence, 42u);
  EXPECT_EQ(decoded.header.engine_id, 5);
  EXPECT_EQ(decoded.header.sampling_rate, 512);
  ASSERT_EQ(decoded.records.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(decoded.records[i].key, records[i].key);
    EXPECT_EQ(decoded.records[i].router, records[i].router);
    EXPECT_EQ(decoded.records[i].sampled_bytes, records[i].sampled_bytes);
    EXPECT_EQ(decoded.records[i].sampled_packets, records[i].sampled_packets);
    EXPECT_EQ(decoded.records[i].first_seen_s, records[i].first_seen_s);
    EXPECT_EQ(decoded.records[i].last_seen_s, records[i].last_seen_s);
  }
}

TEST(V5Codec, EncodeValidates) {
  EXPECT_THROW(encode_v5_packet({}, {}), std::invalid_argument);
  const std::vector<FlowRecord> too_many(31, sample_record());
  EXPECT_THROW(encode_v5_packet(too_many, {}), std::invalid_argument);
  auto big_router = sample_record();
  big_router.router = 0x10000;
  EXPECT_THROW(encode_v5_packet(std::vector<FlowRecord>{big_router}, {}),
               std::invalid_argument);
  V5PacketOptions bad_rate;
  bad_rate.sampling_rate = 1u << 14;
  EXPECT_THROW(
      encode_v5_packet(std::vector<FlowRecord>{sample_record()}, bad_rate),
      std::invalid_argument);
}

TEST(V5Codec, DecodeRejectsMalformedPackets) {
  const std::vector<FlowRecord> records{sample_record()};
  auto bytes = encode_v5_packet(records, {});
  // Truncated header.
  EXPECT_THROW(decode_v5_packet(std::span(bytes).first(10)),
               std::invalid_argument);
  // Truncated body.
  EXPECT_THROW(decode_v5_packet(std::span(bytes).first(bytes.size() - 1)),
               std::invalid_argument);
  // Wrong version.
  auto v9 = bytes;
  v9[1] = 9;
  EXPECT_THROW(decode_v5_packet(v9), std::invalid_argument);
  // Count lies about the body length.
  auto wrong_count = bytes;
  wrong_count[3] = 2;
  EXPECT_THROW(decode_v5_packet(wrong_count), std::invalid_argument);
  // Zero-record packet.
  auto zero = bytes;
  zero[3] = 0;
  EXPECT_THROW(decode_v5_packet(zero), std::invalid_argument);
}

TEST(V5Codec, TraceChunksAtThirtyRecords) {
  std::vector<FlowRecord> records;
  for (int i = 0; i < 65; ++i) {
    records.push_back(sample_record(std::uint32_t(0x64010000 + i)));
  }
  V5PacketOptions opts;
  opts.flow_sequence = 100;
  const auto packets = encode_v5_trace(records, opts);
  ASSERT_EQ(packets.size(), 3u);
  const auto p0 = decode_v5_packet(packets[0]);
  const auto p1 = decode_v5_packet(packets[1]);
  const auto p2 = decode_v5_packet(packets[2]);
  EXPECT_EQ(p0.records.size(), 30u);
  EXPECT_EQ(p1.records.size(), 30u);
  EXPECT_EQ(p2.records.size(), 5u);
  // Flow sequence advances by the record count of each packet.
  EXPECT_EQ(p0.header.flow_sequence, 100u);
  EXPECT_EQ(p1.header.flow_sequence, 130u);
  EXPECT_EQ(p2.header.flow_sequence, 160u);
}

TEST(V5Codec, WirePacketsFeedTheCollector) {
  // Exporter -> v5 wire encoding -> decode -> collector: the full
  // ingestion path a real deployment would run.
  SampledExporter exporter({.sampling_rate = 1, .window_seconds = 60},
                           util::Rng(3));
  GroundTruthFlow gt;
  gt.key = FlowKey{0x0a000001, 0x64010203, 40001, 443, 6};
  gt.bytes = 1500000;
  gt.packets = 1000;
  const std::vector<RouterId> path{1, 2};
  const auto exported = exporter.export_flow(gt, path);
  const auto packets = encode_v5_trace(exported, {});
  Collector collector(1);
  for (const auto& packet : packets) {
    const auto decoded = decode_v5_packet(packet);
    collector.ingest(decoded.records);
  }
  EXPECT_EQ(collector.flow_count(), 1u);
  EXPECT_EQ(collector.total_estimated_bytes(), gt.bytes);
}

TEST(V5Codec, FuzzRoundTripRandomRecords) {
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<FlowRecord> records;
    const auto n = std::size_t(rng.uniform_int(1, 30));
    for (std::size_t i = 0; i < n; ++i) {
      FlowRecord r;
      r.key.src_ip = std::uint32_t(rng.uniform_int(0, 0xffffffffLL));
      r.key.dst_ip = std::uint32_t(rng.uniform_int(0, 0xffffffffLL));
      r.key.src_port = std::uint16_t(rng.uniform_int(0, 0xffff));
      r.key.dst_port = std::uint16_t(rng.uniform_int(0, 0xffff));
      r.key.protocol = std::uint8_t(rng.uniform_int(0, 255));
      r.router = std::uint32_t(rng.uniform_int(0, 0xffff));
      r.sampled_packets = std::uint64_t(rng.uniform_int(1, 1 << 30));
      r.sampled_bytes = std::uint64_t(rng.uniform_int(1, 1 << 30));
      r.first_seen_s = std::uint32_t(rng.uniform_int(0, 86400));
      r.last_seen_s = std::uint32_t(rng.uniform_int(0, 86400));
      records.push_back(r);
    }
    V5PacketOptions opts;
    opts.unix_secs = std::uint32_t(rng.uniform_int(0, 0xffffffffLL));
    opts.flow_sequence = std::uint32_t(rng.uniform_int(0, 0xffffffffLL));
    opts.engine_id = std::uint8_t(rng.uniform_int(0, 255));
    opts.sampling_rate = std::uint16_t(rng.uniform_int(1, (1 << 14) - 1));
    const auto decoded = decode_v5_packet(encode_v5_packet(records, opts));
    ASSERT_EQ(decoded.records.size(), records.size()) << "trial " << trial;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(decoded.records[i].key, records[i].key);
      EXPECT_EQ(decoded.records[i].router, records[i].router);
      EXPECT_EQ(decoded.records[i].sampled_bytes, records[i].sampled_bytes);
      EXPECT_EQ(decoded.records[i].sampled_packets,
                records[i].sampled_packets);
    }
    EXPECT_EQ(decoded.header.sampling_rate, opts.sampling_rate);
    EXPECT_EQ(decoded.header.flow_sequence, opts.flow_sequence);
  }
}

}  // namespace
}  // namespace manytiers::netflow
