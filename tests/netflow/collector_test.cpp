#include "netflow/collector.hpp"

#include <gtest/gtest.h>

#include "netflow/exporter.hpp"

namespace manytiers::netflow {
namespace {

FlowRecord make_record(std::uint32_t dst, RouterId router,
                       std::uint64_t sampled_bytes,
                       std::uint64_t sampled_packets) {
  FlowRecord r;
  r.key = FlowKey{0x0a000001, dst, 1234, 80, 6};
  r.router = router;
  r.sampled_bytes = sampled_bytes;
  r.sampled_packets = sampled_packets;
  return r;
}

TEST(Collector, DeduplicatesAcrossRouters) {
  Collector c(10);
  // The same flow seen at three routers with slightly different samples.
  c.ingest(make_record(1, 100, 900, 9));
  c.ingest(make_record(1, 101, 1100, 11));
  c.ingest(make_record(1, 102, 1000, 10));
  EXPECT_EQ(c.flow_count(), 1u);
  EXPECT_EQ(c.record_count(), 3u);
  const auto flows = c.aggregate();
  ASSERT_EQ(flows.size(), 1u);
  // Keeps the best (most-sampled) observation, scaled up — NOT the sum.
  EXPECT_EQ(flows[0].estimated_bytes, 11000u);
  EXPECT_EQ(flows[0].estimated_packets, 110u);
  EXPECT_EQ(flows[0].routers_seen, 3u);
}

TEST(Collector, DistinctFlowsStaySeparate) {
  Collector c(1);
  c.ingest(make_record(1, 100, 500, 5));
  c.ingest(make_record(2, 100, 700, 7));
  EXPECT_EQ(c.flow_count(), 2u);
  EXPECT_EQ(c.total_estimated_bytes(), 1200u);
}

TEST(Collector, ScalesBySamplingRate) {
  Collector c(100);
  c.ingest(make_record(1, 100, 15, 1));
  const auto flows = c.aggregate();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].estimated_bytes, 1500u);
  EXPECT_EQ(flows[0].estimated_packets, 100u);
}

TEST(Collector, AggregateIsSortedByKey) {
  Collector c(1);
  c.ingest(make_record(9, 1, 100, 1));
  c.ingest(make_record(2, 1, 100, 1));
  c.ingest(make_record(5, 1, 100, 1));
  const auto flows = c.aggregate();
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_LT(flows[0].key.dst_ip, flows[1].key.dst_ip);
  EXPECT_LT(flows[1].key.dst_ip, flows[2].key.dst_ip);
}

TEST(Collector, RejectsEmptyRecordsAndZeroRate) {
  EXPECT_THROW(Collector(0), std::invalid_argument);
  Collector c(1);
  EXPECT_THROW(c.ingest(make_record(1, 1, 100, 0)), std::invalid_argument);
}

TEST(Collector, EndToEndWithExporterRecoversDemand) {
  // Full pipeline: ground truth -> sampled multi-router export ->
  // collect -> aggregate. With rate 1 the estimate is exact despite the
  // duplicate records.
  SampledExporter exporter({.sampling_rate = 1, .window_seconds = 60},
                           util::Rng(7));
  GroundTruthFlow flow;
  flow.key = FlowKey{0x0a000001, 0x0a000002, 40000, 443, 6};
  flow.bytes = 6000000;
  flow.packets = 4000;
  const std::vector<RouterId> path{1, 2, 3, 4};
  Collector c(1);
  c.ingest(exporter.export_flow(flow, path));
  EXPECT_EQ(c.record_count(), 4u);
  EXPECT_EQ(c.flow_count(), 1u);
  EXPECT_EQ(c.total_estimated_bytes(), flow.bytes);
}

TEST(Collector, SampledPipelineApproximatesDemand) {
  SampledExporter exporter({.sampling_rate = 50, .window_seconds = 60},
                           util::Rng(8));
  GroundTruthFlow flow;
  flow.key = FlowKey{0x0a000001, 0x0a000003, 40000, 443, 6};
  flow.bytes = 75000000;
  flow.packets = 50000;
  const std::vector<RouterId> path{1, 2};
  Collector c(50);
  c.ingest(exporter.export_flow(flow, path));
  const double est = double(c.total_estimated_bytes());
  EXPECT_NEAR(est, double(flow.bytes), 0.15 * double(flow.bytes));
}

TEST(BytesToMbps, ConvertsCorrectly) {
  // 1e6 bytes over 8 seconds = 1 Mbps.
  EXPECT_DOUBLE_EQ(bytes_to_mbps(1000000, 8), 1.0);
  EXPECT_DOUBLE_EQ(bytes_to_mbps(0, 60), 0.0);
}

TEST(BytesToMbps, RejectsZeroWindow) {
  EXPECT_THROW(bytes_to_mbps(100, 0), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::netflow
