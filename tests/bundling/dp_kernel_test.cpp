// Cross-checks for the layered DP kernel (bundling/dp_kernel.hpp): the
// divide-and-conquer fast path, the parallel row fills, and the flat
// uint32-split tables must all be bit-identical to the naive reference
// fill — best AND split tables, compared as raw bytes, plus the
// extracted Bundlings — on seeded random markets and on adversarial tie
// instances. A synthetic non-monotone objective must trip the probe and
// take the (counted) fallback path.
#include "bundling/dp_kernel.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "bundling/objectives.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace manytiers::bundling {
namespace {

struct RandomInstance {
  std::vector<double> v, c;
};

RandomInstance random_instance(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  RandomInstance inst;
  for (std::size_t i = 0; i < n; ++i) {
    inst.v.push_back(rng.uniform(0.5, 3.0));
    inst.c.push_back(rng.uniform(0.2, 5.0));
  }
  return inst;
}

// Bitwise table comparison: memcmp catches -0.0 vs 0.0 and NaN-pattern
// differences that operator== would wave through.
void expect_tables_identical(const DpTables& a, const DpTables& b,
                             const char* label) {
  ASSERT_EQ(a.n, b.n) << label;
  ASSERT_EQ(a.b_max, b.b_max) << label;
  ASSERT_EQ(a.best.size(), b.best.size()) << label;
  ASSERT_EQ(a.split.size(), b.split.size()) << label;
  EXPECT_EQ(0, std::memcmp(a.best.data(), b.best.data(),
                           a.best.size() * sizeof(double)))
      << label << ": best tables differ";
  EXPECT_EQ(0, std::memcmp(a.split.data(), b.split.data(),
                           a.split.size() * sizeof(std::uint32_t)))
      << label << ": split tables differ";
}

template <class Objective>
void cross_check(std::size_t n, std::size_t b_max, const Objective& obj,
                 std::span<const std::size_t> order, const char* label) {
  DpKernelOptions naive;
  naive.kernel = DpKernel::kNaive;
  DpKernelOptions autok;
  autok.kernel = DpKernel::kAuto;
  const auto ref = fill_dp_tables(n, b_max, obj, naive);
  const auto fast = fill_dp_tables(n, b_max, obj, autok);
  expect_tables_identical(ref, fast, label);
  for (std::size_t b = 1; b <= b_max; ++b) {
    EXPECT_EQ(extract_dp_bundling(ref, order, b),
              extract_dp_bundling(fast, order, b))
        << label << " b=" << b;
  }
}

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

TEST(DpKernelCrossCheck, CedSeededRandomMarkets) {
  const obs::ScopedEnable metrics;
  obs::Counter& fast =
      obs::Registry::instance().counter("bundling.dp_fastpath");
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (const std::size_t n : {16u, 40u, 300u}) {
      const auto inst = random_instance(seed, n);
      const auto obj = make_ced_objective(inst.v, inst.c, 1.6);
      fast.reset();
      cross_check(n, std::min<std::size_t>(8, n), obj, obj.ps.order, "ced");
      // The real CED objective is totally monotone: the probe must have
      // let the divide-and-conquer path run (one auto fill above).
      EXPECT_EQ(fast.value(), 1u) << "seed=" << seed << " n=" << n;
    }
  }
}

TEST(DpKernelCrossCheck, LogitSeededRandomMarkets) {
  const obs::ScopedEnable metrics;
  obs::Counter& fast =
      obs::Registry::instance().counter("bundling.dp_fastpath");
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    for (const std::size_t n : {25u, 120u, 300u}) {
      const auto inst = random_instance(seed + 100, n);
      const auto obj = make_logit_objective(inst.v, inst.c, 1.2);
      fast.reset();
      cross_check(n, std::min<std::size_t>(6, n), obj, obj.ps.order, "logit");
      EXPECT_EQ(fast.value(), 1u) << "seed=" << seed << " n=" << n;
    }
  }
}

TEST(DpKernelCrossCheck, EqualCostTies) {
  // Every flow at the same unit cost: segment values tie all over the
  // table; whatever path auto takes (ulp-level probe violations may
  // legitimately force the fallback here), the tables must match the
  // naive reference exactly — lowest-split-wins everywhere.
  const std::size_t n = 64;
  std::vector<double> v, c;
  util::Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(rng.uniform(0.5, 3.0));
    c.push_back(2.5);
  }
  const auto ced = make_ced_objective(v, c, 1.5);
  cross_check(n, 8, ced, ced.ps.order, "ced equal costs");
  const auto logit = make_logit_objective(v, c, 1.1);
  cross_check(n, 8, logit, logit.ps.order, "logit equal costs");
}

TEST(DpKernelCrossCheck, DuplicateValuations) {
  const std::size_t n = 48;
  std::vector<double> v(n, 1.75);
  std::vector<double> c;
  util::Rng rng(123);
  for (std::size_t i = 0; i < n; ++i) c.push_back(rng.uniform(0.2, 5.0));
  const auto ced = make_ced_objective(v, c, 2.0);
  cross_check(n, 6, ced, ced.ps.order, "ced duplicate valuations");
  const auto logit = make_logit_objective(v, c, 1.3);
  cross_check(n, 6, logit, logit.ps.order, "logit duplicate valuations");
}

TEST(DpKernelCrossCheck, SingleFlowBundles) {
  // b_max == n: every row down to singleton bundles, including the
  // k == b diagonal where the candidate range is exactly one index.
  const std::size_t n = 12;
  const auto inst = random_instance(77, n);
  const auto obj = make_ced_objective(inst.v, inst.c, 1.4);
  cross_check(n, n, obj, obj.ps.order, "singleton bundles");
}

TEST(DpKernelCrossCheck, TinyInstances) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    const auto inst = random_instance(31 + n, n);
    const auto obj = make_ced_objective(inst.v, inst.c, 1.6);
    cross_check(n, n, obj, obj.ps.order, "tiny");
  }
}

// Rewards long segments quadratically: supermodular in segment length,
// which violates the inverse quadrangle inequality at every quadruple —
// the probe must catch it and route the fill to the naive kernel.
struct NonMonotoneObjective {
  double operator()(std::size_t i, std::size_t j) const {
    const double len = static_cast<double>(j - i);
    return len * len;
  }
};

TEST(DpKernelFallback, NonMonotoneObjectiveTakesNaivePath) {
  const obs::ScopedEnable metrics;
  obs::Counter& fast =
      obs::Registry::instance().counter("bundling.dp_fastpath");
  obs::Counter& fallbacks =
      obs::Registry::instance().counter("bundling.dp_fallbacks");
  const NonMonotoneObjective obj;
  const std::size_t n = 50;
  fast.reset();
  fallbacks.reset();
  DpKernelOptions autok;  // probe + fallback
  const auto t = fill_dp_tables(n, 5, obj, autok);
  EXPECT_EQ(fast.value(), 0u);
  EXPECT_EQ(fallbacks.value(), 1u);
  DpKernelOptions naive;
  naive.kernel = DpKernel::kNaive;
  const auto ref = fill_dp_tables(n, 5, obj, naive);
  expect_tables_identical(ref, t, "non-monotone fallback");
  // One giant bundle is optimal for a supermodular length reward; the
  // fallback must still find it.
  const auto order = identity_order(n);
  const auto b = extract_dp_bundling(t, order, 5);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].size(), n);
}

TEST(DpKernelFallback, ProbeRejectsTinyN) {
  // n < 4 has no quadruple to test; auto must take (and count) the
  // naive path rather than run an unprobed D&C.
  const obs::ScopedEnable metrics;
  obs::Counter& fallbacks =
      obs::Registry::instance().counter("bundling.dp_fallbacks");
  const auto inst = random_instance(5, 3);
  const auto obj = make_ced_objective(inst.v, inst.c, 1.6);
  fallbacks.reset();
  fill_dp_tables(std::size_t{3}, std::size_t{3}, obj);
  EXPECT_EQ(fallbacks.value(), 1u);
}

TEST(DpKernelParallel, BitIdenticalAcrossThreadCountsAndChunkings) {
  // Force the parallel path with a tiny threshold and compare against
  // the fully serial fill for both kernels at several thread counts.
  // Chunk boundaries are a function of the options, not the thread
  // count, so every variant must produce byte-identical tables.
  const std::size_t n = 3000;
  const auto inst = random_instance(2024, n);
  const auto obj = make_ced_objective(inst.v, inst.c, 1.7);

  for (const DpKernel kernel : {DpKernel::kNaive, DpKernel::kDivideConquer}) {
    DpKernelOptions serial;
    serial.kernel = kernel;
    serial.parallel_row_threshold = SIZE_MAX;  // never parallel
    const auto ref = fill_dp_tables(n, 6, obj, serial);
    for (const std::size_t threads : {1u, 2u, 5u}) {
      DpKernelOptions par;
      par.kernel = kernel;
      par.parallel_row_threshold = 64;
      par.parallel_grain = 128;
      par.max_chunks = 8;
      par.threads = threads;
      const auto got = fill_dp_tables(n, 6, obj, par);
      expect_tables_identical(ref, got,
                              kernel == DpKernel::kNaive ? "naive parallel"
                                                         : "dc parallel");
    }
  }
}

TEST(DpKernelMemory, FlatTablesStayUnderDocumentedBudget) {
  // 100k flows x B=32 must fit the documented 12-bytes-per-cell budget:
  // (b_max+1)*(n+1)*(8+4) bytes across exactly two flat allocations —
  // under 40 MiB, where the old vector-of-vectors size_t layout needed
  // ~53 MiB plus per-row allocator overhead. The objective here is a
  // cheap strictly-monotone length penalty so the fill itself runs the
  // fast path in well under a second.
  const obs::ScopedEnable metrics;
  obs::Counter& fast =
      obs::Registry::instance().counter("bundling.dp_fastpath");
  struct ConcaveLength {
    double operator()(std::size_t i, std::size_t j) const {
      const double len = static_cast<double>(j - i);
      return -len * len;
    }
  };
  const std::size_t n = 100000;
  const std::size_t b_max = 32;
  fast.reset();
  const auto t = fill_dp_tables(n, b_max, ConcaveLength{});
  EXPECT_EQ(fast.value(), 1u) << "expected the D&C fast path at 100k flows";
  const std::size_t budget = (b_max + 1) * (n + 1) *
                             (sizeof(double) + sizeof(std::uint32_t));
  EXPECT_LE(t.bytes(), budget + (1u << 12));  // tiny allocator slack
  EXPECT_LT(t.bytes(), 40u * 1024 * 1024);
  // Sanity: a concave length penalty splits as evenly as possible.
  const auto order = identity_order(n);
  const auto b = extract_dp_bundling(t, order, b_max);
  EXPECT_EQ(b.size(), b_max);
}

TEST(DpKernelGuards, RejectsNOverUint32) {
  const NonMonotoneObjective obj;
  EXPECT_THROW(
      fill_dp_tables(std::size_t{std::numeric_limits<std::uint32_t>::max()},
                     std::size_t{2}, obj),
      std::invalid_argument);
}

TEST(DpKernelOptionsEnv, KernelOverrideParses) {
  ASSERT_EQ(setenv("MANYTIERS_DP_KERNEL", "naive", 1), 0);
  EXPECT_EQ(dp_kernel_options_from_env().kernel, DpKernel::kNaive);
  ASSERT_EQ(setenv("MANYTIERS_DP_KERNEL", "dc", 1), 0);
  EXPECT_EQ(dp_kernel_options_from_env().kernel, DpKernel::kDivideConquer);
  ASSERT_EQ(setenv("MANYTIERS_DP_KERNEL", "auto", 1), 0);
  EXPECT_EQ(dp_kernel_options_from_env().kernel, DpKernel::kAuto);
  ASSERT_EQ(setenv("MANYTIERS_DP_KERNEL", "garbage", 1), 0);
  EXPECT_EQ(dp_kernel_options_from_env().kernel, DpKernel::kAuto);
  ASSERT_EQ(unsetenv("MANYTIERS_DP_KERNEL"), 0);
  EXPECT_EQ(dp_kernel_options_from_env().kernel, DpKernel::kAuto);
}

}  // namespace
}  // namespace manytiers::bundling
