#include "bundling/bundle.hpp"

#include <gtest/gtest.h>

namespace manytiers::bundling {
namespace {

TEST(Validate, AcceptsProperPartition) {
  EXPECT_NO_THROW(validate({{0, 2}, {1}}, 3));
}

TEST(Validate, RejectsEmptyBundle) {
  EXPECT_THROW(validate({{0, 1}, {}}, 2), std::invalid_argument);
}

TEST(Validate, RejectsDuplicateFlow) {
  EXPECT_THROW(validate({{0, 1}, {1}}, 2), std::invalid_argument);
}

TEST(Validate, RejectsMissingFlow) {
  EXPECT_THROW(validate({{0}}, 2), std::invalid_argument);
}

TEST(Validate, RejectsOutOfRangeIndex) {
  EXPECT_THROW(validate({{0, 5}}, 2), std::invalid_argument);
}

TEST(SingleBundle, CoversAllFlows) {
  const auto b = single_bundle(4);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], (Bundle{0, 1, 2, 3}));
  EXPECT_NO_THROW(validate(b, 4));
  EXPECT_THROW(single_bundle(0), std::invalid_argument);
}

TEST(PerFlowBundles, OneBundlePerFlow) {
  const auto b = per_flow_bundles(3);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(b[i], Bundle{i});
  }
  EXPECT_NO_THROW(validate(b, 3));
  EXPECT_THROW(per_flow_bundles(0), std::invalid_argument);
}

TEST(BundleOfFlow, InvertsThePartition) {
  const Bundling b{{2, 0}, {1, 3}};
  const auto lookup = bundle_of_flow(b, 4);
  EXPECT_EQ(lookup[0], 0u);
  EXPECT_EQ(lookup[1], 1u);
  EXPECT_EQ(lookup[2], 0u);
  EXPECT_EQ(lookup[3], 1u);
}

TEST(BundleOfFlow, ValidatesFirst) {
  EXPECT_THROW(bundle_of_flow({{0}}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::bundling
