#include "bundling/strategies.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace manytiers::bundling {
namespace {

// Sort bundle contents for order-insensitive comparisons.
Bundling normalized(Bundling b) {
  for (auto& bundle : b) std::sort(bundle.begin(), bundle.end());
  return b;
}

TEST(TokenBucket, PaperExampleDemandWeighted) {
  // Paper §4.2.1: demands {30, 10, 10, 10} into two bundles ->
  // {30} and {10, 10, 10}.
  const std::vector<double> demands{30.0, 10.0, 10.0, 10.0};
  const auto b = normalized(demand_weighted(demands, 2));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], (Bundle{0}));
  EXPECT_EQ(b[1], (Bundle{1, 2, 3}));
}

TEST(TokenBucket, SingleBundleTakesEverything) {
  const std::vector<double> w{5.0, 1.0, 2.0};
  const auto b = token_bucket(w, 1);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].size(), 3u);
}

TEST(TokenBucket, MoreBundlesThanFlowsDropsEmpties) {
  const std::vector<double> w{1.0, 2.0};
  const auto b = token_bucket(w, 6);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_NO_THROW(validate(b, 2));
}

TEST(TokenBucket, AlwaysProducesValidPartition) {
  const std::vector<double> w{9.0, 3.5, 2.0, 2.0, 1.0, 0.25, 0.25, 14.0};
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto b = token_bucket(w, n);
    EXPECT_NO_THROW(validate(b, w.size())) << n << " bundles";
    EXPECT_LE(b.size(), n);
  }
}

TEST(TokenBucket, EqualWeightsSplitEvenly) {
  const std::vector<double> w(9, 1.0);
  const auto b = token_bucket(w, 3);
  ASSERT_EQ(b.size(), 3u);
  for (const auto& bundle : b) EXPECT_EQ(bundle.size(), 3u);
}

TEST(TokenBucket, OverflowChargesNextBundle) {
  // Total weight 23, per-bundle budget 23/3. The giant flow lands in
  // bundle 0 and its deficit cascades: bundle 1 opens only via the
  // "empty bundle" rule and immediately closes, leaving bundle 2 with
  // the remaining budget for the last two flows.
  const std::vector<double> w{20.0, 1.0, 1.0, 1.0};
  const auto b = token_bucket(w, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], (Bundle{0}));
  EXPECT_EQ(b[1], (Bundle{1}));
  EXPECT_EQ(b[2], (Bundle{2, 3}));
  EXPECT_NO_THROW(validate(b, 4));
}

TEST(TokenBucket, Validates) {
  EXPECT_THROW(token_bucket({}, 2), std::invalid_argument);
  EXPECT_THROW(token_bucket(std::vector<double>{1.0, -1.0}, 2),
               std::invalid_argument);
  EXPECT_THROW(token_bucket(std::vector<double>{1.0}, 0),
               std::invalid_argument);
}

TEST(CostWeighted, CheapFlowsGetTheirOwnBundles) {
  // Weights are 1/cost, so local (cheap) flows fill the first bundle.
  const std::vector<double> costs{0.1, 10.0, 10.0, 10.0, 10.0};
  const auto b = normalized(cost_weighted(costs, 2));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], (Bundle{0}));
  EXPECT_EQ(b[1], (Bundle{1, 2, 3, 4}));
}

TEST(ProfitWeighted, TiersAreContiguousInCost) {
  // Equal profit mass per tier along the cost axis: the first tier takes
  // the cheap flows holding half the potential profit.
  const std::vector<double> pi{1.0, 8.0, 1.0, 1.0, 1.0};
  const std::vector<double> c{5.0, 1.0, 4.0, 2.0, 3.0};
  const auto b = normalized(profit_weighted(pi, c, 2));
  ASSERT_EQ(b.size(), 2u);
  // Cost order: 1(c=1, pi=8), 3(c=2), 4(c=3), 2(c=4), 0(c=5).
  // Budget 6 each: flow 1 fills tier 0 (deficit 2 charged ahead); the
  // rest land in tier 1.
  EXPECT_EQ(b[0], (Bundle{1}));
  EXPECT_EQ(b[1], (Bundle{0, 2, 3, 4}));
}

TEST(ProfitWeighted, NeverInterleavesCostRanges) {
  const std::vector<double> pi{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const std::vector<double> c{8.0, 1.0, 6.0, 2.0, 5.0, 3.0, 7.0, 4.0};
  for (std::size_t n = 1; n <= 4; ++n) {
    const auto b = profit_weighted(pi, c, n);
    EXPECT_NO_THROW(validate(b, pi.size()));
    for (std::size_t x = 0; x < b.size(); ++x) {
      for (std::size_t y = x + 1; y < b.size(); ++y) {
        double xmax = 0.0, ymin = 1e300;
        for (const auto i : b[x]) xmax = std::max(xmax, c[i]);
        for (const auto i : b[y]) ymin = std::min(ymin, c[i]);
        EXPECT_LE(xmax, ymin) << "bundles " << x << "," << y << " n=" << n;
      }
    }
  }
}

TEST(ProfitWeighted, ValidatesSizes) {
  EXPECT_THROW(
      profit_weighted(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0},
                      2),
      std::invalid_argument);
}

TEST(TokenBucketOrdered, RespectsExplicitOrder) {
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  const std::vector<std::size_t> order{3, 2, 1, 0};
  const auto b = token_bucket_ordered(w, order, 2);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], (Bundle{3, 2}));
  EXPECT_EQ(b[1], (Bundle{1, 0}));
}

TEST(TokenBucketOrdered, ValidatesOrder) {
  const std::vector<double> w{1.0, 1.0};
  EXPECT_THROW(token_bucket_ordered(w, std::vector<std::size_t>{0}, 2),
               std::invalid_argument);
  EXPECT_THROW(token_bucket_ordered(w, std::vector<std::size_t>{0, 9}, 2),
               std::invalid_argument);
}

TEST(CostDivision, PaperExampleEqualWidthRanges) {
  // Paper §4.2.1: max cost $10, two bundles -> [0, 5) and [5, 10].
  const std::vector<double> costs{1.0, 4.99, 5.0, 10.0};
  const auto b = cost_division(costs, 2);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(normalized(b)[0], (Bundle{0, 1}));
  EXPECT_EQ(normalized(b)[1], (Bundle{2, 3}));
}

TEST(CostDivision, DropsEmptyRanges) {
  // All costs cluster at the top: lower ranges are empty.
  const std::vector<double> costs{9.0, 9.5, 10.0};
  const auto b = cost_division(costs, 4);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_NO_THROW(validate(b, 3));
}

TEST(CostDivision, ProducesValidPartitions) {
  const std::vector<double> costs{0.5, 2.0, 3.3, 7.7, 9.9, 1.1};
  for (std::size_t n = 1; n <= 6; ++n) {
    EXPECT_NO_THROW(validate(cost_division(costs, n), costs.size()));
  }
}

TEST(IndexDivision, SplitsRanksEvenly) {
  const std::vector<double> costs{5.0, 1.0, 3.0, 2.0, 4.0, 6.0};
  const auto b = index_division(costs, 3);
  ASSERT_EQ(b.size(), 3u);
  // Sorted by cost: 1(1.0) 3(2.0) 2(3.0) 4(4.0) 0(5.0) 5(6.0).
  EXPECT_EQ(normalized(b)[0], (Bundle{1, 3}));
  EXPECT_EQ(normalized(b)[1], (Bundle{2, 4}));
  EXPECT_EQ(normalized(b)[2], (Bundle{0, 5}));
}

TEST(IndexDivision, UnlikeCostDivisionIgnoresGaps) {
  // Costs with a huge gap: cost division lumps the low three together,
  // index division splits purely by rank.
  const std::vector<double> costs{1.0, 1.1, 1.2, 100.0};
  const auto by_cost = cost_division(costs, 2);
  const auto by_rank = index_division(costs, 2);
  EXPECT_EQ(normalized(by_cost)[0], (Bundle{0, 1, 2}));
  EXPECT_EQ(normalized(by_rank)[0], (Bundle{0, 1}));
}

TEST(IndexDivision, MoreBundlesThanFlows) {
  const std::vector<double> costs{2.0, 1.0};
  const auto b = index_division(costs, 5);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_NO_THROW(validate(b, 2));
}

TEST(ClassAware, NeverMixesClasses) {
  const std::vector<double> pi{5.0, 4.0, 3.0, 2.0, 1.0, 0.5};
  const std::vector<double> c{1.0, 2.0, 1.0, 2.0, 1.0, 2.0};
  const std::vector<std::size_t> cls{0, 1, 0, 1, 0, 1};
  const auto b = class_aware_profit_weighted(pi, c, cls, 4);
  EXPECT_NO_THROW(validate(b, pi.size()));
  for (const auto& bundle : b) {
    for (const std::size_t i : bundle) {
      EXPECT_EQ(cls[i], cls[bundle[0]]);
    }
  }
}

TEST(ClassAware, UsesAllRequestedBundlesAcrossClasses) {
  const std::vector<double> pi{10.0, 10.0, 10.0, 1.0, 1.0, 1.0};
  const std::vector<double> c{1.0, 1.5, 2.0, 3.0, 3.5, 4.0};
  const std::vector<std::size_t> cls{0, 0, 0, 1, 1, 1};
  const auto b = class_aware_profit_weighted(pi, c, cls, 4);
  EXPECT_NO_THROW(validate(b, pi.size()));
  // The heavier class gets the extra bundles.
  std::size_t class0_bundles = 0;
  for (const auto& bundle : b) {
    if (cls[bundle[0]] == 0) ++class0_bundles;
  }
  EXPECT_GE(class0_bundles, 2u);
}

TEST(ClassAware, RequiresOneBundlePerClass) {
  const std::vector<double> pi{1.0, 1.0, 1.0};
  const std::vector<double> c{1.0, 2.0, 3.0};
  const std::vector<std::size_t> cls{0, 1, 2};
  EXPECT_THROW(class_aware_profit_weighted(pi, c, cls, 2),
               std::invalid_argument);
  EXPECT_NO_THROW(class_aware_profit_weighted(pi, c, cls, 3));
}

TEST(ClassAware, SingleClassBehavesLikeProfitWeighted) {
  const std::vector<double> pi{8.0, 2.0, 1.0, 1.0};
  const std::vector<double> c{1.0, 2.0, 3.0, 4.0};
  const std::vector<std::size_t> cls(4, 0);
  const auto a = normalized(class_aware_profit_weighted(pi, c, cls, 2));
  const auto b = normalized(profit_weighted(pi, c, 2));
  EXPECT_EQ(a, b);
}

TEST(StrategySeries, EveryVariantMatchesPerCountCalls) {
  // The series variants share one sort across bundle counts; the output
  // must still be exactly the per-count result, bundle for bundle.
  const std::vector<double> weights{9.0, 3.5, 2.0, 2.0, 1.0, 0.25, 0.25, 14.0};
  const std::vector<double> costs{0.8, 4.0, 2.5, 1.1, 6.0, 3.3, 0.4, 5.2};
  const std::size_t max_bundles = 8;

  const auto tb = token_bucket_series(weights, max_bundles);
  const auto dw = demand_weighted_series(weights, max_bundles);
  const auto cw = cost_weighted_series(costs, max_bundles);
  const auto pw = profit_weighted_series(weights, costs, max_bundles);
  const auto cd = cost_division_series(costs, max_bundles);
  const auto id = index_division_series(costs, max_bundles);
  ASSERT_EQ(tb.size(), max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    EXPECT_EQ(tb[b - 1], token_bucket(weights, b)) << "token_bucket b=" << b;
    EXPECT_EQ(dw[b - 1], demand_weighted(weights, b)) << "demand b=" << b;
    EXPECT_EQ(cw[b - 1], cost_weighted(costs, b)) << "cost b=" << b;
    EXPECT_EQ(pw[b - 1], profit_weighted(weights, costs, b))
        << "profit b=" << b;
    EXPECT_EQ(cd[b - 1], cost_division(costs, b)) << "cost_div b=" << b;
    EXPECT_EQ(id[b - 1], index_division(costs, b)) << "index_div b=" << b;
  }
}

TEST(StrategySeries, Validate) {
  const std::vector<double> w{1.0, 2.0};
  EXPECT_THROW(token_bucket_series(w, 0), std::invalid_argument);
  EXPECT_THROW(cost_weighted_series(std::vector<double>{}, 2),
               std::invalid_argument);
  EXPECT_THROW(profit_weighted_series(w, std::vector<double>{1.0}, 2),
               std::invalid_argument);
  EXPECT_THROW(cost_division_series(w, 0), std::invalid_argument);
  EXPECT_THROW(index_division_series(w, 0), std::invalid_argument);
}

TEST(ClassAware, ValidatesSizes) {
  EXPECT_THROW(class_aware_profit_weighted(std::vector<double>{1.0},
                                           std::vector<double>{1.0},
                                           std::vector<std::size_t>{0, 1}, 2),
               std::invalid_argument);
  EXPECT_THROW(class_aware_profit_weighted(std::vector<double>{1.0, 1.0},
                                           std::vector<double>{1.0},
                                           std::vector<std::size_t>{0, 1}, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::bundling
