#include "bundling/optimal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "demand/ced.hpp"
#include "demand/logit.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace manytiers::bundling {
namespace {

// Total CED profit of a bundling with each bundle at its optimal price.
double ced_bundling_profit(const demand::CedModel& model,
                           const std::vector<double>& v,
                           const std::vector<double>& c, const Bundling& b) {
  double total = 0.0;
  for (const auto& bundle : b) {
    std::vector<double> bv, bc;
    for (const std::size_t i : bundle) {
      bv.push_back(v[i]);
      bc.push_back(c[i]);
    }
    const double price = model.bundle_price(bv, bc);
    for (std::size_t i = 0; i < bv.size(); ++i) {
      total += model.flow_profit(bv[i], bc[i], price);
    }
  }
  return total;
}

// Total logit profit of a bundling at the equal-markup optimum.
double logit_bundling_profit(const demand::LogitModel& model,
                             const std::vector<double>& v,
                             const std::vector<double>& c, const Bundling& b) {
  std::vector<double> bundle_v, bundle_c;
  for (const auto& bundle : b) {
    std::vector<double> bv, bc;
    for (const std::size_t i : bundle) {
      bv.push_back(v[i]);
      bc.push_back(c[i]);
    }
    bundle_v.push_back(model.bundle_valuation(bv));
    bundle_c.push_back(model.bundle_cost(bv, bc));
  }
  return model.optimal_prices(bundle_v, bundle_c).profit;
}

TEST(ExhaustiveOptimal, FindsTheObviousSplit) {
  // Two cheap flows and two expensive flows, two bundles: the optimal
  // partition separates them by cost.
  const demand::CedModel model(2.0);
  const std::vector<double> v{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> c{1.0, 1.0, 4.0, 4.0};
  const auto best = exhaustive_optimal(4, 2, [&](const Bundling& b) {
    return ced_bundling_profit(model, v, c, b);
  });
  ASSERT_EQ(best.size(), 2u);
  auto sorted = best;
  for (auto& bundle : sorted) std::sort(bundle.begin(), bundle.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted[0], (Bundle{0, 1}));
  EXPECT_EQ(sorted[1], (Bundle{2, 3}));
}

TEST(ExhaustiveOptimal, OneBundleMeansNoChoice) {
  const auto best =
      exhaustive_optimal(3, 1, [](const Bundling&) { return 1.0; });
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0].size(), 3u);
}

TEST(ExhaustiveOptimal, Validates) {
  const auto unit = [](const Bundling&) { return 0.0; };
  EXPECT_THROW(exhaustive_optimal(0, 2, unit), std::invalid_argument);
  EXPECT_THROW(exhaustive_optimal(20, 2, unit), std::invalid_argument);
  EXPECT_THROW(exhaustive_optimal(3, 0, unit), std::invalid_argument);
}

TEST(IntervalDp, SplitsAtTheObviousBoundary) {
  const std::vector<std::size_t> order{0, 1, 2, 3};
  // Segment value: 1 point per singleton segment, 0 otherwise, capped at
  // two bundles -> DP must pick some 2-way split; with value favoring
  // {0} | {1,2,3} style splits we can check reconstruction.
  const auto value = [](std::size_t i, std::size_t j) {
    return (j - i == 2) ? 10.0 : 0.0;  // reward segments of exactly 2
  };
  const auto b = interval_dp(order, 2, value);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], (Bundle{0, 1}));
  EXPECT_EQ(b[1], (Bundle{2, 3}));
}

TEST(IntervalDp, MapsBackToOriginalIndices) {
  const std::vector<std::size_t> order{3, 1, 0, 2};  // cost-sorted order
  const auto value = [](std::size_t, std::size_t) { return 1.0; };
  const auto b = interval_dp(order, 4, value);
  EXPECT_NO_THROW(validate(b, 4));
}

TEST(IntervalDp, Validates) {
  const auto unit = [](std::size_t, std::size_t) { return 0.0; };
  EXPECT_THROW(interval_dp({}, 2, unit), std::invalid_argument);
  const std::vector<std::size_t> order{0};
  EXPECT_THROW(interval_dp(order, 0, unit), std::invalid_argument);
}

// --- The load-bearing property: the interval DP is exact. ---

struct RandomInstance {
  std::vector<double> v, c;
};

RandomInstance random_instance(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  RandomInstance inst;
  for (std::size_t i = 0; i < n; ++i) {
    inst.v.push_back(rng.uniform(0.5, 3.0));
    inst.c.push_back(rng.uniform(0.2, 5.0));
  }
  return inst;
}

class DpMatchesExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpMatchesExhaustive, CedInstances) {
  const auto inst = random_instance(GetParam(), 8);
  const demand::CedModel model(1.6);
  for (const std::size_t n_bundles : {2u, 3u}) {
    const auto dp = ced_optimal(inst.v, inst.c, 1.6, n_bundles);
    const auto ex =
        exhaustive_optimal(inst.v.size(), n_bundles, [&](const Bundling& b) {
          return ced_bundling_profit(model, inst.v, inst.c, b);
        });
    const double dp_profit = ced_bundling_profit(model, inst.v, inst.c, dp);
    const double ex_profit = ced_bundling_profit(model, inst.v, inst.c, ex);
    EXPECT_NEAR(dp_profit, ex_profit, 1e-9 * std::abs(ex_profit))
        << "seed=" << GetParam() << " bundles=" << n_bundles;
  }
}

TEST_P(DpMatchesExhaustive, LogitInstances) {
  const auto inst = random_instance(GetParam() + 1000, 7);
  const demand::LogitModel model(1.2, 100.0);
  for (const std::size_t n_bundles : {2u, 3u}) {
    const auto dp = logit_optimal(inst.v, inst.c, 1.2, n_bundles);
    const auto ex =
        exhaustive_optimal(inst.v.size(), n_bundles, [&](const Bundling& b) {
          return logit_bundling_profit(model, inst.v, inst.c, b);
        });
    const double dp_profit =
        logit_bundling_profit(model, inst.v, inst.c, dp);
    const double ex_profit =
        logit_bundling_profit(model, inst.v, inst.c, ex);
    EXPECT_NEAR(dp_profit, ex_profit, 1e-7 * std::abs(ex_profit))
        << "seed=" << GetParam() << " bundles=" << n_bundles;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpMatchesExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(IntervalDpAll, ElementWiseIdenticalToPerCountDp) {
  // The single-pass series must be indistinguishable from re-filling the
  // DP at every bundle count — exact Bundling equality, not just profit.
  const auto inst = random_instance(7, 24);
  std::vector<std::size_t> order(inst.v.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inst.c[a] < inst.c[b];
  });
  const auto value = [&](std::size_t i, std::size_t j) {
    // An arbitrary non-monotone objective exercises the max-over-b
    // extraction, not just the superadditive fast path.
    double sum = 0.0;
    for (std::size_t r = i; r < j; ++r) sum += inst.v[order[r]];
    return sum - 0.7 * double(j - i) * double(j - i);
  };
  const std::size_t max_bundles = 30;  // deliberately > n to hit clamping
  const auto all = interval_dp_all(order, max_bundles, value);
  ASSERT_EQ(all.size(), max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    EXPECT_EQ(all[b - 1], interval_dp(order, b, value)) << "b=" << b;
  }
}

TEST(IntervalDpAll, Validates) {
  const auto unit = [](std::size_t, std::size_t) { return 0.0; };
  EXPECT_THROW(interval_dp_all({}, 2, unit), std::invalid_argument);
  const std::vector<std::size_t> order{0};
  EXPECT_THROW(interval_dp_all(order, 0, unit), std::invalid_argument);
}

TEST(OptimalSeries, MatchPerCountCallsExactly) {
  const auto inst = random_instance(11, 25);
  const std::size_t max_bundles = 7;
  const auto ced_series = ced_optimal_series(inst.v, inst.c, 1.4, max_bundles);
  const auto logit_series =
      logit_optimal_series(inst.v, inst.c, 1.2, max_bundles);
  ASSERT_EQ(ced_series.size(), max_bundles);
  ASSERT_EQ(logit_series.size(), max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    EXPECT_EQ(ced_series[b - 1], ced_optimal(inst.v, inst.c, 1.4, b));
    EXPECT_EQ(logit_series[b - 1], logit_optimal(inst.v, inst.c, 1.2, b));
  }
}

TEST(OptimalSeries, CostExactlyOneDpFill) {
  // The fill count lives on the obs registry now; the O(n^2 B)-not-
  // O(n^2 B^2) guarantee is "a whole series costs one fill".
  const obs::ScopedEnable metrics;
  obs::Counter& fills =
      obs::Registry::instance().counter("bundling.dp_fills");
  const auto inst = random_instance(12, 20);
  fills.reset();
  ced_optimal_series(inst.v, inst.c, 1.4, 6);
  EXPECT_EQ(fills.value(), 1u);
  fills.reset();
  logit_optimal_series(inst.v, inst.c, 1.2, 6);
  EXPECT_EQ(fills.value(), 1u);
}

TEST(OptimalSeries, DpKernelCountersTrackCellsAndFastPath) {
  // dp_cells counts computed DP cells exactly: row b covers k in [b, n],
  // so a 20-flow, 6-row fill is sum_{b=1..6} (20 - b + 1) = 105 cells.
  // Both paper objectives are totally monotone, so the auto kernel's
  // probe must let the divide-and-conquer path run (dp_fastpath) and
  // never fall back (dp_fallbacks).
  const obs::ScopedEnable metrics;
  auto& registry = obs::Registry::instance();
  obs::Counter& cells = registry.counter("bundling.dp_cells");
  obs::Counter& fastpath = registry.counter("bundling.dp_fastpath");
  obs::Counter& fallbacks = registry.counter("bundling.dp_fallbacks");
  const auto inst = random_instance(12, 20);
  for (int pass = 0; pass < 2; ++pass) {
    cells.reset();
    fastpath.reset();
    fallbacks.reset();
    if (pass == 0) {
      ced_optimal_series(inst.v, inst.c, 1.4, 6);
    } else {
      logit_optimal_series(inst.v, inst.c, 1.2, 6);
    }
    EXPECT_EQ(cells.value(), 105u) << "pass=" << pass;
    EXPECT_EQ(fastpath.value(), 1u) << "pass=" << pass;
    EXPECT_EQ(fallbacks.value(), 0u) << "pass=" << pass;
  }
}

TEST(CedOptimal, ProfitIsMonotoneInBundleCount) {
  const auto inst = random_instance(42, 40);
  const demand::CedModel model(1.3);
  double prev = -1e300;
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto b = ced_optimal(inst.v, inst.c, 1.3, n);
    const double profit = ced_bundling_profit(model, inst.v, inst.c, b);
    EXPECT_GE(profit, prev - 1e-9);
    prev = profit;
  }
}

TEST(LogitOptimal, ProfitIsMonotoneInBundleCount) {
  const auto inst = random_instance(43, 40);
  const demand::LogitModel model(1.1, 500.0);
  double prev = -1e300;
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto b = logit_optimal(inst.v, inst.c, 1.1, n);
    const double profit = logit_bundling_profit(model, inst.v, inst.c, b);
    EXPECT_GE(profit, prev - 1e-9);
    prev = profit;
  }
}

TEST(CedOptimal, BundlesAreContiguousInCost) {
  const auto inst = random_instance(44, 30);
  const auto b = ced_optimal(inst.v, inst.c, 2.0, 4);
  // For each pair of bundles, cost ranges must not interleave.
  for (std::size_t x = 0; x < b.size(); ++x) {
    for (std::size_t y = x + 1; y < b.size(); ++y) {
      double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
      for (const auto i : b[x]) {
        xmin = std::min(xmin, inst.c[i]);
        xmax = std::max(xmax, inst.c[i]);
      }
      for (const auto i : b[y]) {
        ymin = std::min(ymin, inst.c[i]);
        ymax = std::max(ymax, inst.c[i]);
      }
      EXPECT_TRUE(xmax <= ymin || ymax <= xmin);
    }
  }
}

TEST(CedOptimal, SingleBundleProfitMatchesBlendedFormula) {
  const auto inst = random_instance(45, 10);
  const demand::CedModel model(1.5);
  const auto b = ced_optimal(inst.v, inst.c, 1.5, 1);
  ASSERT_EQ(b.size(), 1u);
  const double profit = ced_bundling_profit(model, inst.v, inst.c, b);
  const double price = model.bundle_price(inst.v, inst.c);
  EXPECT_NEAR(profit, model.total_profit(inst.v, inst.c,
                                         std::vector<double>(10, price)),
              1e-9);
}

TEST(OptimalBundling, ValidatesArguments) {
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> c{1.0, -1.0};
  EXPECT_THROW(ced_optimal(v, c, 2.0, 2), std::invalid_argument);
  EXPECT_THROW(ced_optimal(v, std::vector<double>{1.0}, 2.0, 2),
               std::invalid_argument);
  EXPECT_THROW(ced_optimal(v, std::vector<double>{1.0, 1.0}, 1.0, 2),
               std::invalid_argument);
  EXPECT_THROW(logit_optimal(v, std::vector<double>{1.0, 1.0}, 0.0, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::bundling
