#include "netdyn/flows.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "netdyn/dynamic_network.hpp"
#include "netdyn/testbed.hpp"
#include "topology/internet2.hpp"
#include "workload/generators.hpp"

namespace manytiers::netdyn {
namespace {

using topology::PopId;

struct Bound {
  workload::FlowSet flows;
  FlowRecoster recoster;
};

Bound bound_internet2(const DynamicNetwork& dyn) {
  workload::TopologyBinding binding;
  workload::FlowSet flows = workload::generate_internet2(
      {.seed = 11, .n_flows = 80}, topology::internet2_network(),
      dyn.distances(), &binding);
  return {std::move(flows), FlowRecoster(std::move(binding))};
}

TEST(FlowRecoster, GenerationTimeFlowsAreAFixedPoint) {
  const DynamicNetwork dyn(topology::internet2_network());
  Bound b = bound_internet2(dyn);
  const workload::FlowSet original = b.flows;
  // Re-costing against the matrix the flows were generated from must
  // change nothing: the frozen transform replays the exact calibration.
  EXPECT_EQ(b.recoster.recost_all(b.flows, dyn.distances()), 0u);
  for (std::size_t i = 0; i < b.flows.size(); ++i) {
    EXPECT_EQ(b.flows[i].distance_miles, original[i].distance_miles) << i;
  }
}

TEST(FlowRecoster, IncrementalRecostEqualsFullRecost) {
  DynamicNetwork dyn(topology::internet2_network());
  Bound incremental = bound_internet2(dyn);
  Bound full = bound_internet2(dyn);

  const auto batches = generate_update_sequence(topology::internet2_network(),
                                                21, {.n_batches = 6});
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    const DistanceDelta delta = dyn.apply(batches[bi]);
    incremental.recoster.recost(incremental.flows, delta, dyn.distances());
    full.recoster.recost_all(full.flows, dyn.distances());
    ASSERT_EQ(incremental.flows.size(), full.flows.size());
    for (std::size_t i = 0; i < full.flows.size(); ++i) {
      // Bit-exact: both paths push the same raw through the same frozen
      // transform.
      ASSERT_EQ(incremental.flows[i].distance_miles,
                full.flows[i].distance_miles)
          << "batch " << bi << ", flow " << i;
    }
  }
}

TEST(FlowRecoster, UnreachablePairsGetTheFinitePenaltyDistance) {
  DynamicNetwork dyn(topology::internet2_network());
  Bound b = bound_internet2(dyn);
  const double penalty =
      b.recoster.calibrated_distance(topology::kUnreachable);
  EXPECT_TRUE(std::isfinite(penalty));
  EXPECT_GT(penalty, 0.0);

  // Isolate Seattle; every flow riding a Seattle pair lands exactly on
  // the penalty distance, and every other flow keeps its bits.
  const workload::FlowSet before = b.flows;
  const PopId seattle = *dyn.find_pop("Seattle");
  std::vector<NetworkUpdate> cut;
  for (const auto* peer : {"Sunnyvale", "Denver"}) {
    NetworkUpdate u;
    u.kind = NetworkUpdate::Kind::LinkDown;
    u.a = "Seattle";
    u.b = peer;
    cut.push_back(u);
  }
  const DistanceDelta delta = dyn.apply(cut);
  const std::size_t changed =
      b.recoster.recost(b.flows, delta, dyn.distances());

  std::size_t expected_changed = 0;
  const auto& pairs = b.recoster.binding().pairs;
  ASSERT_EQ(pairs.size(), b.flows.size());
  for (std::size_t i = 0; i < b.flows.size(); ++i) {
    const bool rides_seattle =
        pairs[i].first == seattle || pairs[i].second == seattle;
    if (rides_seattle) {
      EXPECT_EQ(b.flows[i].distance_miles, penalty) << i;
      if (b.flows[i].distance_miles != before[i].distance_miles) {
        ++expected_changed;
      }
    } else {
      EXPECT_EQ(b.flows[i].distance_miles, before[i].distance_miles) << i;
    }
  }
  EXPECT_EQ(changed, expected_changed);
  EXPECT_GT(changed, 0u);
}

TEST(FlowRecoster, RejectsFlowCountMismatch) {
  const DynamicNetwork dyn(topology::internet2_network());
  Bound b = bound_internet2(dyn);
  workload::FlowSet wrong("wrong");
  wrong.add(b.flows[0]);
  DistanceDelta delta;
  delta.pop_count = dyn.pop_count();
  EXPECT_THROW(b.recoster.recost(wrong, delta, dyn.distances()),
               std::invalid_argument);
  EXPECT_THROW(b.recoster.recost_all(wrong, dyn.distances()),
               std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::netdyn
