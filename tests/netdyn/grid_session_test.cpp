#include "netdyn/grid_session.hpp"

#include <gtest/gtest.h>

#include <string>

#include "driver/report.hpp"
#include "netdyn/testbed.hpp"
#include "topology/internet2.hpp"

namespace manytiers::netdyn {
namespace {

driver::ExperimentGrid small_grid() {
  driver::ExperimentGrid grid = driver::named_grid("smoke");
  grid.base.n_flows = 30;  // keep per-batch re-evaluation quick
  return grid;
}

// Timing-stripped render: the byte-stable artifact both reports must
// agree on.
std::string stable(const driver::BatchReport& report) {
  return driver::report_to_string(report, /*include_timing=*/false);
}

// The acceptance invariant, end to end: applying generated update
// batches incrementally yields a maintained BATCH_JSON report that is
// byte-identical to recompute-from-scratch after every batch — for both
// kernels and across thread counts.
TEST(GridSession, ReportStaysByteIdenticalToScratchAcrossBatches) {
  const auto backbone = topology::internet2_network();
  const auto batches = generate_update_sequence(backbone, 17,
                                                {.n_batches = 4,
                                                 .batch_size = 2});
  for (const SsspKernel kernel :
       {SsspKernel::kIncremental, SsspKernel::kNaive}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      GridSessionOptions options;
      options.threads = threads;
      options.kernel = {kernel};
      GridSession session(small_grid(), backbone, options);
      ASSERT_EQ(stable(session.report()), stable(session.scratch_report()))
          << to_string(kernel) << " t" << threads << " epoch 0";
      for (std::size_t b = 0; b < batches.size(); ++b) {
        session.apply(batches[b]);
        ASSERT_EQ(stable(session.report()), stable(session.scratch_report()))
            << to_string(kernel) << " t" << threads << " batch " << b;
      }
    }
  }
}

// Thread-count independence of the maintained report itself: the same
// sequence applied under different thread counts lands on the same
// bytes.
TEST(GridSession, ReportIsThreadCountInvariant) {
  const auto backbone = topology::internet2_network();
  const auto batches = generate_update_sequence(backbone, 29,
                                                {.n_batches = 3});
  GridSession serial(small_grid(), backbone, {.threads = 1});
  GridSession parallel(small_grid(), backbone, {.threads = 5});
  ASSERT_EQ(stable(serial.report()), stable(parallel.report()));
  for (const auto& batch : batches) {
    serial.apply(batch);
    parallel.apply(batch);
    ASSERT_EQ(stable(serial.report()), stable(parallel.report()));
  }
}

TEST(GridSession, Epoch0MatchesTheStaticPipeline) {
  // With no updates applied, the session's report equals a plain
  // run_grid of the same grid — the dynamic layer adds nothing at epoch
  // 0.
  const auto grid = small_grid();
  GridSession session(grid, topology::internet2_network(), {.threads = 2});
  driver::RunOptions run;
  run.threads = 2;
  const auto reference = driver::run_grid(grid, run);
  EXPECT_EQ(stable(session.report()), stable(reference));
}

TEST(GridSession, CleanBatchesTouchNoCells) {
  const auto backbone = topology::internet2_network();
  GridSession session(small_grid(), backbone, {.threads = 2});

  // A reweigh of a link the flows do ride, applied twice: the second
  // application is distance-neutral, so nothing downstream reprices.
  NetworkUpdate u;
  u.kind = NetworkUpdate::Kind::LinkWeight;
  u.a = "Denver";
  u.b = "Kansas City";
  u.length_miles = 2500.0;
  const auto first = session.apply(u);
  EXPECT_GT(first.dirty_cells, 0u);
  EXPECT_GT(first.recosted_flows, 0u);

  const auto second = session.apply(u);
  EXPECT_TRUE(second.delta.empty());
  EXPECT_EQ(second.recosted_flows, 0u);
  EXPECT_EQ(second.dirty_datasets, 0u);
  EXPECT_EQ(second.dirty_cells, 0u);
  EXPECT_EQ(session.epoch(), 2u);  // the epoch still advanced
  EXPECT_EQ(stable(session.report()), stable(session.scratch_report()));
}

TEST(GridSession, DirtyStatsCoverOnlyTheBoundDataset) {
  // smoke = {EU ISP, Internet2, CDN} x 2 demand x 1 cost x 2 strategies:
  // only the Internet2 block (4 cells) may reprice on a topology change.
  const auto grid = small_grid();
  GridSession session(grid, topology::internet2_network(), {.threads = 2});
  NetworkUpdate u;
  u.kind = NetworkUpdate::Kind::LinkDown;
  u.a = "Chicago";
  u.b = "New York";
  const auto stats = session.apply(u);
  EXPECT_EQ(stats.dirty_datasets, 1u);
  EXPECT_EQ(stats.dirty_cells, grid.demand_kinds.size() *
                                   grid.cost_kinds.size() *
                                   grid.strategies.size());
  EXPECT_EQ(stable(session.report()), stable(session.scratch_report()));
}

}  // namespace
}  // namespace manytiers::netdyn
