#include "netdyn/update.hpp"

#include <gtest/gtest.h>

namespace manytiers::netdyn {
namespace {

TEST(UpdateDsl, ParsesEveryKind) {
  const auto ops = parse_updates(
      "w,Denver,Kansas City,512.5;"
      "down,Seattle,Sunnyvale;"
      "up,Chicago,Atlanta;"
      "up,Houston,Denver,900,40;"
      "add,Lab PoP,39.5,-104.9;"
      "rm,Lab PoP");
  ASSERT_EQ(ops.size(), 6u);

  EXPECT_EQ(ops[0].kind, NetworkUpdate::Kind::LinkWeight);
  EXPECT_EQ(ops[0].a, "Denver");
  EXPECT_EQ(ops[0].b, "Kansas City");
  EXPECT_DOUBLE_EQ(ops[0].length_miles, 512.5);

  EXPECT_EQ(ops[1].kind, NetworkUpdate::Kind::LinkDown);
  EXPECT_EQ(ops[1].a, "Seattle");
  EXPECT_EQ(ops[1].b, "Sunnyvale");

  EXPECT_EQ(ops[2].kind, NetworkUpdate::Kind::LinkUp);
  EXPECT_LT(ops[2].length_miles, 0.0);  // great-circle sentinel

  EXPECT_EQ(ops[3].kind, NetworkUpdate::Kind::LinkUp);
  EXPECT_DOUBLE_EQ(ops[3].length_miles, 900.0);
  EXPECT_DOUBLE_EQ(ops[3].capacity_gbps, 40.0);

  EXPECT_EQ(ops[4].kind, NetworkUpdate::Kind::PopAdd);
  EXPECT_EQ(ops[4].name, "Lab PoP");
  EXPECT_DOUBLE_EQ(ops[4].location.lat_deg, 39.5);
  EXPECT_DOUBLE_EQ(ops[4].location.lon_deg, -104.9);

  EXPECT_EQ(ops[5].kind, NetworkUpdate::Kind::PopRemove);
  EXPECT_EQ(ops[5].name, "Lab PoP");
}

TEST(UpdateDsl, RoundTripsThroughSerialize) {
  const auto ops = parse_updates(
      "w,A,B,100.25;down,A,B;up,A,B;up,A,B,1,2;add,N,1.5,-2.5;rm,N");
  const std::string wire = serialize(std::span<const NetworkUpdate>(ops));
  EXPECT_EQ(parse_updates(wire), ops);
}

TEST(UpdateDsl, TrimsFieldWhitespaceAndSkipsEmptyOps) {
  const auto ops = parse_updates("  down , New York , Chicago ; ;");
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].a, "New York");
  EXPECT_EQ(ops[0].b, "Chicago");
  EXPECT_TRUE(parse_updates("").empty());
  EXPECT_TRUE(parse_updates("  ;;  ").empty());
}

TEST(UpdateDsl, SerializeEmitsExactDoubles) {
  NetworkUpdate u;
  u.kind = NetworkUpdate::Kind::LinkWeight;
  u.a = "A";
  u.b = "B";
  u.length_miles = 0.1 + 0.2;  // not representable as a short decimal
  const auto back = parse_updates(serialize(u));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].length_miles, u.length_miles);  // bit-exact
}

TEST(UpdateDsl, RejectsMalformedOps) {
  EXPECT_THROW(parse_updates("zap,A,B"), std::invalid_argument);
  EXPECT_THROW(parse_updates("w,A,B"), std::invalid_argument);       // no length
  EXPECT_THROW(parse_updates("w,A,B,abc"), std::invalid_argument);   // bad number
  EXPECT_THROW(parse_updates("down,A"), std::invalid_argument);      // one endpoint
  EXPECT_THROW(parse_updates("down,A,B,extra"), std::invalid_argument);
  EXPECT_THROW(parse_updates("up,,B"), std::invalid_argument);       // empty name
  EXPECT_THROW(parse_updates("add,N,91"), std::invalid_argument);    // no lon
  EXPECT_THROW(parse_updates("rm"), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::netdyn
