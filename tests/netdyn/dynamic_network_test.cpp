#include "netdyn/dynamic_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "netdyn/testbed.hpp"
#include "topology/internet2.hpp"

namespace manytiers::netdyn {
namespace {

using topology::kUnreachable;
using topology::PopId;

// Bit-for-bit matrix comparison. EXPECT_EQ on doubles is exact (and
// inf == inf holds), which is precisely the invariant the incremental
// kernel promises against the from-scratch reference.
void expect_matrices_identical(const topology::DistanceMatrix& got,
                               const topology::DistanceMatrix& want,
                               const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (PopId s = 0; s < got.size(); ++s) {
    for (PopId d = 0; d < got.size(); ++d) {
      ASSERT_EQ(got(s, d), want(s, d))
          << context << ": cell (" << s << ", " << d << ")";
    }
  }
}

NetworkUpdate reweigh(const std::string& a, const std::string& b,
                      double length) {
  NetworkUpdate u;
  u.kind = NetworkUpdate::Kind::LinkWeight;
  u.a = a;
  u.b = b;
  u.length_miles = length;
  return u;
}

NetworkUpdate link_down(const std::string& a, const std::string& b) {
  NetworkUpdate u;
  u.kind = NetworkUpdate::Kind::LinkDown;
  u.a = a;
  u.b = b;
  return u;
}

TEST(DynamicNetwork, StartsAtTheStaticAllPairsMatrix) {
  const auto net = topology::internet2_network();
  const DynamicNetwork dyn(net);
  EXPECT_EQ(dyn.epoch(), 0u);
  expect_matrices_identical(dyn.distances(), topology::all_pairs_distances(net),
                            "epoch 0");
}

TEST(DynamicNetwork, DeltaNamesExactlyTheChangedCells) {
  DynamicNetwork dyn(topology::internet2_network(),
                     {SsspKernel::kIncremental});
  const topology::DistanceMatrix before = dyn.distances();
  const auto delta = dyn.apply(reweigh("Denver", "Kansas City", 5000.0));
  EXPECT_EQ(delta.epoch, 1u);
  EXPECT_EQ(delta.pop_count, dyn.pop_count());

  std::set<std::pair<PopId, PopId>> expected;
  for (PopId s = 0; s < dyn.pop_count(); ++s) {
    for (PopId d = 0; d < dyn.pop_count(); ++d) {
      if (dyn.distances()(s, d) != before(s, d)) expected.insert({s, d});
    }
  }
  EXPECT_FALSE(expected.empty());
  const std::set<std::pair<PopId, PopId>> got(delta.changed.begin(),
                                              delta.changed.end());
  EXPECT_EQ(got, expected);
  // Sorted and duplicate-free by contract.
  EXPECT_EQ(got.size(), delta.changed.size());
  EXPECT_TRUE(std::is_sorted(delta.changed.begin(), delta.changed.end()));
}

TEST(DynamicNetwork, SameValueReweighYieldsEmptyDeltaButAdvancesEpoch) {
  DynamicNetwork dyn(topology::internet2_network());
  dyn.apply(reweigh("Seattle", "Denver", 4321.0));
  const topology::DistanceMatrix before = dyn.distances();
  // Reweighing to the value the link already has is a topology event
  // (the epoch moves) with zero net edge change.
  const auto delta = dyn.apply(reweigh("Seattle", "Denver", 4321.0));
  EXPECT_EQ(dyn.epoch(), 2u);
  EXPECT_EQ(delta.epoch, 2u);
  EXPECT_TRUE(delta.empty());
  expect_matrices_identical(dyn.distances(), before,
                            "after same-length reweigh");
}

TEST(DynamicNetwork, LinkFailureCanPartition) {
  DynamicNetwork dyn(topology::internet2_network());
  // Cutting both of Seattle's links isolates it.
  std::vector<NetworkUpdate> batch{link_down("Seattle", "Sunnyvale"),
                                   link_down("Seattle", "Denver")};
  const auto delta = dyn.apply(batch);
  EXPECT_FALSE(delta.empty());
  const PopId seattle = *dyn.find_pop("Seattle");
  const PopId denver = *dyn.find_pop("Denver");
  EXPECT_EQ(dyn.distances()(seattle, denver), kUnreachable);
  EXPECT_EQ(dyn.distances()(denver, seattle), kUnreachable);
  EXPECT_EQ(dyn.distances()(seattle, seattle), 0.0);  // still its own source
  expect_matrices_identical(dyn.distances(), dyn.scratch_distances(),
                            "after partition");
}

TEST(DynamicNetwork, PopLifecycleTombstonesAndGrows) {
  DynamicNetwork dyn(topology::internet2_network());
  const std::size_t n0 = dyn.pop_count();
  const PopId denver = *dyn.find_pop("Denver");

  NetworkUpdate rm;
  rm.kind = NetworkUpdate::Kind::PopRemove;
  rm.name = "Denver";
  dyn.apply(rm);
  EXPECT_EQ(dyn.pop_count(), n0);  // tombstone keeps the slot
  EXPECT_EQ(dyn.alive_count(), n0 - 1);
  EXPECT_FALSE(dyn.alive(denver));
  EXPECT_FALSE(dyn.find_pop("Denver").has_value());
  for (PopId d = 0; d < dyn.pop_count(); ++d) {
    EXPECT_EQ(dyn.distances()(denver, d), kUnreachable);  // diagonal too
    EXPECT_EQ(dyn.distances()(d, denver), kUnreachable);
  }
  expect_matrices_identical(dyn.distances(), dyn.scratch_distances(),
                            "after PoP removal");

  // The name is free again; the new PoP gets a fresh id and a wired
  // link, and its row comes from a full single-source run.
  std::vector<NetworkUpdate> re;
  NetworkUpdate add;
  add.kind = NetworkUpdate::Kind::PopAdd;
  add.name = "Denver";
  add.location = {39.74, -104.98};
  re.push_back(add);
  NetworkUpdate wire;
  wire.kind = NetworkUpdate::Kind::LinkUp;
  wire.a = "Denver";
  wire.b = "Kansas City";
  wire.length_miles = 600.0;
  re.push_back(wire);
  dyn.apply(re);
  EXPECT_EQ(dyn.pop_count(), n0 + 1);
  const PopId denver2 = *dyn.find_pop("Denver");
  EXPECT_NE(denver2, denver);
  EXPECT_EQ(dyn.distances()(denver2, *dyn.find_pop("Kansas City")), 600.0);
  expect_matrices_identical(dyn.distances(), dyn.scratch_distances(),
                            "after PoP re-add");
}

TEST(DynamicNetwork, InvalidOpsThrowAndLeaveStateUntouched) {
  DynamicNetwork dyn(topology::internet2_network());
  const topology::DistanceMatrix before = dyn.distances();

  const auto expect_rejected = [&](const NetworkUpdate& u) {
    EXPECT_THROW(dyn.apply(u), std::invalid_argument);
    EXPECT_EQ(dyn.epoch(), 0u);
    expect_matrices_identical(dyn.distances(), before, "after rejected op");
  };

  expect_rejected(reweigh("Nowhere", "Denver", 100.0));   // unknown PoP
  expect_rejected(reweigh("Seattle", "Atlanta", 100.0));  // no such link
  expect_rejected(reweigh("Seattle", "Denver", -1.0));    // negative length
  expect_rejected(link_down("Seattle", "Atlanta"));       // no such link
  NetworkUpdate dup;
  dup.kind = NetworkUpdate::Kind::LinkUp;
  dup.a = "Seattle";
  dup.b = "Denver";  // already up
  expect_rejected(dup);
  NetworkUpdate add;
  add.kind = NetworkUpdate::Kind::PopAdd;
  add.name = "Seattle";  // duplicate alive name
  add.location = {0.0, 0.0};
  expect_rejected(add);

  // A batch that fails mid-way must not commit its valid prefix.
  const std::vector<NetworkUpdate> batch{reweigh("Seattle", "Denver", 999.0),
                                         reweigh("Nowhere", "Denver", 1.0)};
  EXPECT_THROW(dyn.apply(batch), std::invalid_argument);
  EXPECT_EQ(dyn.epoch(), 0u);
  expect_matrices_identical(dyn.distances(), before, "after rejected batch");
}

// The tentpole invariant: over a generated mixed sequence (reweighs,
// failures, restorations, PoP adds and removals, partitions included),
// the incrementally maintained matrix equals the from-scratch reference
// bit-for-bit after every batch — for both kernels.
TEST(DynamicNetwork, GeneratedSequencesStayBitIdenticalToScratch) {
  for (const SsspKernel kernel :
       {SsspKernel::kIncremental, SsspKernel::kNaive}) {
    const auto base = synthetic_backbone({.n_pops = 24, .extra_links = 14,
                                          .seed = 7});
    DynamicNetwork dyn(base, {kernel});
    UpdateSequenceOptions seq;
    seq.n_batches = 12;
    seq.batch_size = 3;
    const auto batches = generate_update_sequence(base, 99, seq);
    for (std::size_t b = 0; b < batches.size(); ++b) {
      dyn.apply(batches[b]);
      expect_matrices_identical(
          dyn.distances(), dyn.scratch_distances(),
          std::string(to_string(kernel)) + " batch " + std::to_string(b));
    }
  }
}

// Both kernels also agree with each other cell-for-cell along the same
// sequence (a different path to the same fixed point).
TEST(DynamicNetwork, KernelsAgreeAlongTheSameSequence) {
  const auto base = synthetic_backbone({.n_pops = 20, .extra_links = 10,
                                        .seed = 3});
  DynamicNetwork incremental(base, {SsspKernel::kIncremental});
  DynamicNetwork naive(base, {SsspKernel::kNaive});
  const auto batches = generate_update_sequence(base, 5, {.n_batches = 8});
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const auto di = incremental.apply(batches[b]);
    const auto dn = naive.apply(batches[b]);
    EXPECT_EQ(di.changed, dn.changed) << "batch " << b;
    expect_matrices_identical(incremental.distances(), naive.distances(),
                              "kernel cross-check, batch " +
                                  std::to_string(b));
  }
}

TEST(SsspKernelOptions, EnvOverrideMirrorsDpKernel) {
  const auto with_env = [](const char* value) {
    if (value == nullptr) {
      ::unsetenv("MANYTIERS_SSSP_KERNEL");
    } else {
      ::setenv("MANYTIERS_SSSP_KERNEL", value, 1);
    }
    const auto options = sssp_kernel_options_from_env();
    ::unsetenv("MANYTIERS_SSSP_KERNEL");
    return options.kernel;
  };
  EXPECT_EQ(with_env(nullptr), SsspKernel::kIncremental);
  EXPECT_EQ(with_env("auto"), SsspKernel::kIncremental);
  EXPECT_EQ(with_env("incremental"), SsspKernel::kIncremental);
  EXPECT_EQ(with_env("naive"), SsspKernel::kNaive);
  EXPECT_EQ(with_env("garbage"), SsspKernel::kIncremental);
}

}  // namespace
}  // namespace manytiers::netdyn
