#include "geo/geoip.hpp"

#include <gtest/gtest.h>

namespace manytiers::geo {
namespace {

TEST(ParseIpv4, ParsesDottedQuad) {
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("10.0.0.1"), 0x0a000001u);
  EXPECT_EQ(parse_ipv4("192.168.1.2"), 0xc0a80102u);
}

TEST(ParseIpv4, RoundTripsWithFormat) {
  for (const auto s : {"1.2.3.4", "100.42.0.255", "8.8.8.8"}) {
    EXPECT_EQ(format_ipv4(parse_ipv4(s)), s);
  }
}

TEST(ParseIpv4, RejectsMalformedInput) {
  EXPECT_THROW(parse_ipv4("1.2.3"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4(""), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("1..2.3"), std::invalid_argument);
}

TEST(Prefix, ContainsAndBounds) {
  const Prefix p = parse_prefix("10.1.0.0/16");
  EXPECT_TRUE(p.contains(parse_ipv4("10.1.0.0")));
  EXPECT_TRUE(p.contains(parse_ipv4("10.1.255.255")));
  EXPECT_FALSE(p.contains(parse_ipv4("10.2.0.0")));
  EXPECT_EQ(p.first(), parse_ipv4("10.1.0.0"));
  EXPECT_EQ(p.last(), parse_ipv4("10.1.255.255"));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix p = parse_prefix("0.0.0.0/0");
  EXPECT_TRUE(p.contains(0));
  EXPECT_TRUE(p.contains(0xffffffffu));
}

TEST(Prefix, HostRouteMatchesExactlyOneAddress) {
  const Prefix p = parse_prefix("10.0.0.1/32");
  EXPECT_TRUE(p.contains(parse_ipv4("10.0.0.1")));
  EXPECT_FALSE(p.contains(parse_ipv4("10.0.0.2")));
}

TEST(Prefix, ParseRejectsHostBitsAndBadLength) {
  EXPECT_THROW(parse_prefix("10.1.1.0/16"), std::invalid_argument);
  EXPECT_THROW(parse_prefix("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW(parse_prefix("10.0.0.0"), std::invalid_argument);
  EXPECT_THROW(parse_prefix("10.0.0.0/x"), std::invalid_argument);
}

TEST(Prefix, FormatRoundTrips) {
  EXPECT_EQ(format_prefix(parse_prefix("100.7.0.0/16")), "100.7.0.0/16");
}

TEST(GeoIpDb, LongestPrefixWins) {
  GeoIpDb db;
  db.add(parse_prefix("100.0.0.0/8"), 0);
  db.add(parse_prefix("100.5.0.0/16"), 1);
  EXPECT_EQ(db.lookup_city(parse_ipv4("100.5.1.1")), 1u);
  EXPECT_EQ(db.lookup_city(parse_ipv4("100.6.1.1")), 0u);
}

TEST(GeoIpDb, MissReturnsNullopt) {
  GeoIpDb db;
  db.add(parse_prefix("100.0.0.0/16"), 0);
  EXPECT_FALSE(db.lookup_city(parse_ipv4("99.0.0.1")).has_value());
  EXPECT_EQ(db.lookup(parse_ipv4("99.0.0.1")), nullptr);
}

TEST(GeoIpDb, DuplicatePrefixReplaces) {
  GeoIpDb db;
  db.add(parse_prefix("100.0.0.0/16"), 0);
  db.add(parse_prefix("100.0.0.0/16"), 2);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.lookup_city(parse_ipv4("100.0.0.1")), 2u);
}

TEST(GeoIpDb, AddValidatesCityAndHostBits) {
  GeoIpDb db;
  EXPECT_THROW(db.add(parse_prefix("100.0.0.0/16"), world_cities().size()),
               std::out_of_range);
  Prefix bad;
  bad.address = parse_ipv4("100.0.0.1");
  bad.length = 16;
  EXPECT_THROW(db.add(bad, 0), std::invalid_argument);
}

TEST(SyntheticGeoip, EveryCityIsResolvable) {
  const GeoIpDb db = build_synthetic_geoip();
  for (std::size_t c = 0; c < world_cities().size(); ++c) {
    const IpV4 host = synthetic_host(c, 12345);
    const auto found = db.lookup_city(host);
    ASSERT_TRUE(found.has_value()) << world_cities()[c].name;
    EXPECT_EQ(*found, c) << world_cities()[c].name;
  }
}

TEST(SyntheticGeoip, HostsLandInsideTheCityBlock) {
  for (const std::uint32_t salt : {0u, 1u, 77u, 123456u}) {
    const IpV4 host = synthetic_host(3, salt);
    bool inside = false;
    for (int b = 0; b < 2; ++b) {
      inside |= synthetic_block(3, b, 2).contains(host);
    }
    EXPECT_TRUE(inside);
  }
}

TEST(SyntheticGeoip, BlocksAreDisjointAcrossCities) {
  const auto a = synthetic_block(0, 0, 2);
  const auto b = synthetic_block(1, 0, 2);
  EXPECT_FALSE(a.contains(b.address));
  EXPECT_FALSE(b.contains(a.address));
}

TEST(SyntheticGeoip, BlockValidatesArguments) {
  EXPECT_THROW(synthetic_block(0, 2, 2), std::out_of_range);
  EXPECT_THROW(synthetic_block(0, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::geo
