#include "geo/region.hpp"

#include <gtest/gtest.h>

#include "geo/cities.hpp"

namespace manytiers::geo {
namespace {

TEST(ClassifyCities, SameCityIsMetro) {
  const auto london = find_city("London");
  ASSERT_TRUE(london);
  EXPECT_EQ(classify_cities(*london, *london), Region::Metro);
}

TEST(ClassifyCities, SameCountryIsNational) {
  const auto london = find_city("London");
  const auto manchester = find_city("Manchester");
  ASSERT_TRUE(london && manchester);
  EXPECT_EQ(classify_cities(*london, *manchester), Region::National);
}

TEST(ClassifyCities, DifferentCountryIsInternational) {
  const auto london = find_city("London");
  const auto paris = find_city("Paris");
  ASSERT_TRUE(london && paris);
  EXPECT_EQ(classify_cities(*london, *paris), Region::International);
}

TEST(ClassifyCities, RejectsBadIndices) {
  EXPECT_THROW(classify_cities(0, world_cities().size()), std::out_of_range);
}

TEST(ClassifyDistance, PaperThresholds) {
  // Paper §3.3: flows < 10 miles are metro, < 100 miles national.
  EXPECT_EQ(classify_distance(0.0), Region::Metro);
  EXPECT_EQ(classify_distance(9.99), Region::Metro);
  EXPECT_EQ(classify_distance(10.0), Region::National);
  EXPECT_EQ(classify_distance(99.9), Region::National);
  EXPECT_EQ(classify_distance(100.0), Region::International);
  EXPECT_EQ(classify_distance(5000.0), Region::International);
}

TEST(ClassifyDistance, CustomThresholds) {
  const DistanceThresholds t{50.0, 500.0};
  EXPECT_EQ(classify_distance(49.0, t), Region::Metro);
  EXPECT_EQ(classify_distance(499.0, t), Region::National);
  EXPECT_EQ(classify_distance(501.0, t), Region::International);
}

TEST(ClassifyDistance, Validates) {
  EXPECT_THROW(classify_distance(-1.0), std::invalid_argument);
  EXPECT_THROW(classify_distance(5.0, DistanceThresholds{100.0, 10.0}),
               std::invalid_argument);
}

TEST(RegionToString, AllValues) {
  EXPECT_EQ(to_string(Region::Metro), "metro");
  EXPECT_EQ(to_string(Region::National), "national");
  EXPECT_EQ(to_string(Region::International), "international");
}

}  // namespace
}  // namespace manytiers::geo
