#include "geo/trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/rng.hpp"

namespace manytiers::geo {
namespace {

TEST(PrefixTrie, StartsEmpty) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_FALSE(trie.lookup(parse_ipv4("1.2.3.4")).has_value());
}

TEST(PrefixTrie, InsertAndExactLookup) {
  PrefixTrie<std::string> trie;
  trie.insert(parse_prefix("10.0.0.0/8"), "ten");
  EXPECT_EQ(trie.size(), 1u);
  ASSERT_NE(trie.find_exact(parse_prefix("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find_exact(parse_prefix("10.0.0.0/8")), "ten");
  EXPECT_EQ(trie.find_exact(parse_prefix("10.0.0.0/16")), nullptr);
}

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.insert(parse_prefix("0.0.0.0/0"), 0);
  trie.insert(parse_prefix("10.0.0.0/8"), 8);
  trie.insert(parse_prefix("10.1.0.0/16"), 16);
  trie.insert(parse_prefix("10.1.2.0/24"), 24);
  EXPECT_EQ(trie.lookup(parse_ipv4("10.1.2.3")), 24);
  EXPECT_EQ(trie.lookup(parse_ipv4("10.1.9.9")), 16);
  EXPECT_EQ(trie.lookup(parse_ipv4("10.9.9.9")), 8);
  EXPECT_EQ(trie.lookup(parse_ipv4("11.0.0.1")), 0);
}

TEST(PrefixTrie, NoDefaultRouteMeansMisses) {
  PrefixTrie<int> trie;
  trie.insert(parse_prefix("192.168.0.0/16"), 1);
  EXPECT_FALSE(trie.lookup(parse_ipv4("192.169.0.1")).has_value());
  EXPECT_FALSE(trie.lookup(parse_ipv4("8.8.8.8")).has_value());
}

TEST(PrefixTrie, HostRouteMatchesOneAddress) {
  PrefixTrie<int> trie;
  trie.insert(parse_prefix("1.2.3.4/32"), 7);
  EXPECT_EQ(trie.lookup(parse_ipv4("1.2.3.4")), 7);
  EXPECT_FALSE(trie.lookup(parse_ipv4("1.2.3.5")).has_value());
}

TEST(PrefixTrie, ReplaceKeepsSizeStable) {
  PrefixTrie<int> trie;
  trie.insert(parse_prefix("10.0.0.0/8"), 1);
  trie.insert(parse_prefix("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(parse_ipv4("10.0.0.1")), 2);
}

TEST(PrefixTrie, SiblingBranchesAreIndependent) {
  PrefixTrie<int> trie;
  trie.insert(parse_prefix("128.0.0.0/1"), 1);  // high half
  trie.insert(parse_prefix("0.0.0.0/1"), 0);    // low half
  EXPECT_EQ(trie.lookup(parse_ipv4("200.0.0.1")), 1);
  EXPECT_EQ(trie.lookup(parse_ipv4("20.0.0.1")), 0);
}

TEST(PrefixTrie, ValidatesInsert) {
  PrefixTrie<int> trie;
  Prefix host_bits;
  host_bits.address = parse_ipv4("10.0.0.1");
  host_bits.length = 8;
  EXPECT_THROW(trie.insert(host_bits, 1), std::invalid_argument);
  Prefix bad_len;
  bad_len.length = 33;
  EXPECT_THROW(trie.insert(bad_len, 1), std::invalid_argument);
}

TEST(PrefixTrie, LookupPtrAvoidsCopy) {
  PrefixTrie<std::string> trie;
  trie.insert(parse_prefix("10.0.0.0/8"), "value");
  const std::string* p = trie.lookup_ptr(parse_ipv4("10.1.1.1"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, "value");
  EXPECT_EQ(trie.lookup_ptr(parse_ipv4("11.1.1.1")), nullptr);
}

// Fuzz the trie against a straightforward linear-scan reference.
TEST(PrefixTrie, AgreesWithLinearReferenceOnRandomTables) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    PrefixTrie<int> trie;
    std::vector<std::pair<Prefix, int>> reference;
    for (int i = 0; i < 60; ++i) {
      const int length = int(rng.uniform_int(0, 32));
      const IpV4 mask = length == 0 ? 0 : ~IpV4(0) << (32 - length);
      Prefix p;
      p.address = IpV4(rng.uniform_int(0, 0xffffffffLL)) & mask;
      p.length = length;
      trie.insert(p, i);
      bool replaced = false;
      for (auto& [rp, rv] : reference) {
        if (rp.address == p.address && rp.length == p.length) {
          rv = i;
          replaced = true;
          break;
        }
      }
      if (!replaced) reference.emplace_back(p, i);
    }
    EXPECT_EQ(trie.size(), reference.size());
    for (int probe = 0; probe < 300; ++probe) {
      const IpV4 ip = IpV4(rng.uniform_int(0, 0xffffffffLL));
      const std::pair<Prefix, int>* best = nullptr;
      for (const auto& entry : reference) {
        if (entry.first.contains(ip) &&
            (best == nullptr || entry.first.length > best->first.length)) {
          best = &entry;
        }
      }
      const auto got = trie.lookup(ip);
      if (best == nullptr) {
        EXPECT_FALSE(got.has_value()) << format_ipv4(ip);
      } else {
        ASSERT_TRUE(got.has_value()) << format_ipv4(ip);
        EXPECT_EQ(*got, best->second) << format_ipv4(ip);
      }
    }
  }
}

}  // namespace
}  // namespace manytiers::geo
