#include "geo/cities.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace manytiers::geo {
namespace {

TEST(Cities, DatabaseIsNonTrivial) {
  EXPECT_GE(world_cities().size(), 100u);
}

TEST(Cities, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const auto& c : world_cities()) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate: " << c.name;
  }
}

TEST(Cities, AllCoordinatesAreValid) {
  for (const auto& c : world_cities()) {
    EXPECT_NO_THROW(validate(c.location)) << std::string(c.name);
  }
}

TEST(Cities, EveryContinentIsRepresented) {
  for (const auto continent :
       {Continent::NorthAmerica, Continent::SouthAmerica, Continent::Europe,
        Continent::Asia, Continent::Africa, Continent::Oceania}) {
    EXPECT_FALSE(cities_in(continent).empty()) << to_string(continent);
  }
}

TEST(Cities, FindCityReturnsCorrectIndex) {
  const auto id = find_city("London");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(world_cities()[*id].name, "London");
  EXPECT_EQ(world_cities()[*id].country, "GB");
}

TEST(Cities, FindCityMissReturnsNullopt) {
  EXPECT_FALSE(find_city("Atlantis").has_value());
}

TEST(Cities, Internet2PopCitiesExist) {
  for (const auto name :
       {"Seattle", "Sunnyvale", "Los Angeles", "Denver", "Kansas City",
        "Houston", "Chicago", "Indianapolis", "Atlanta", "Washington",
        "New York"}) {
    EXPECT_TRUE(find_city(name).has_value()) << name;
  }
}

TEST(Cities, CountryLookupFindsGermanCluster) {
  const auto de = cities_in_country("DE");
  EXPECT_GE(de.size(), 4u);
  for (const auto id : de) EXPECT_EQ(world_cities()[id].country, "DE");
}

TEST(Cities, EuropeHasSameCountryClustersForNationalFlows) {
  // The EU ISP generator needs countries with several cities.
  int multi_city_countries = 0;
  std::set<std::string_view> seen;
  for (const auto id : cities_in(Continent::Europe)) {
    const auto country = world_cities()[id].country;
    if (!seen.insert(country).second) continue;
    if (cities_in_country(country).size() >= 2) ++multi_city_countries;
  }
  EXPECT_GE(multi_city_countries, 5);
}

TEST(Cities, DistanceLondonParis) {
  const auto london = find_city("London");
  const auto paris = find_city("Paris");
  ASSERT_TRUE(london && paris);
  EXPECT_NEAR(city_distance_miles(*london, *paris), 213.0, 10.0);
}

TEST(Cities, DistanceRejectsBadIndex) {
  EXPECT_THROW(city_distance_miles(0, world_cities().size()),
               std::out_of_range);
}

TEST(Cities, ContinentToStringCoversAll) {
  EXPECT_EQ(to_string(Continent::Europe), "Europe");
  EXPECT_EQ(to_string(Continent::NorthAmerica), "North America");
  EXPECT_EQ(to_string(Continent::Oceania), "Oceania");
}

}  // namespace
}  // namespace manytiers::geo
