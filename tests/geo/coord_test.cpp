#include "geo/coord.hpp"

#include <gtest/gtest.h>

namespace manytiers::geo {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const GeoPoint p{40.71, -74.01};
  EXPECT_DOUBLE_EQ(haversine_miles(p, p), 0.0);
}

TEST(Haversine, IsSymmetric) {
  const GeoPoint a{40.71, -74.01}, b{51.51, -0.13};
  EXPECT_DOUBLE_EQ(haversine_miles(a, b), haversine_miles(b, a));
}

TEST(Haversine, NewYorkToLondonIsAbout3460Miles) {
  const GeoPoint nyc{40.71, -74.01}, london{51.51, -0.13};
  EXPECT_NEAR(haversine_miles(nyc, london), 3461.0, 30.0);
}

TEST(Haversine, SeattleToSunnyvaleIsAbout700Miles) {
  const GeoPoint sea{47.61, -122.33}, svl{37.37, -122.04};
  EXPECT_NEAR(haversine_miles(sea, svl), 708.0, 15.0);
}

TEST(Haversine, AntipodalPointsAreHalfCircumference) {
  const GeoPoint a{0.0, 0.0}, b{0.0, 180.0};
  EXPECT_NEAR(haversine_miles(a, b), 3.14159265 * kEarthRadiusMiles, 1.0);
}

TEST(Haversine, OneDegreeLongitudeAtEquator) {
  const GeoPoint a{0.0, 0.0}, b{0.0, 1.0};
  // One degree of arc = 2 pi R / 360 ~ 69.1 miles.
  EXPECT_NEAR(haversine_miles(a, b), 69.1, 0.2);
}

TEST(Haversine, TriangleInequalityHolds) {
  const GeoPoint a{47.61, -122.33}, b{39.74, -104.99}, c{40.71, -74.01};
  EXPECT_LE(haversine_miles(a, c),
            haversine_miles(a, b) + haversine_miles(b, c) + 1e-9);
}

TEST(Validate, AcceptsBoundaryValues) {
  EXPECT_NO_THROW(validate(GeoPoint{90.0, 180.0}));
  EXPECT_NO_THROW(validate(GeoPoint{-90.0, -180.0}));
}

TEST(Validate, RejectsOutOfRange) {
  EXPECT_THROW(validate(GeoPoint{90.1, 0.0}), std::invalid_argument);
  EXPECT_THROW(validate(GeoPoint{-90.1, 0.0}), std::invalid_argument);
  EXPECT_THROW(validate(GeoPoint{0.0, 180.1}), std::invalid_argument);
  EXPECT_THROW(validate(GeoPoint{0.0, -180.1}), std::invalid_argument);
}

TEST(Haversine, RejectsInvalidCoordinates) {
  EXPECT_THROW(haversine_miles(GeoPoint{91.0, 0.0}, GeoPoint{0.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace manytiers::geo
