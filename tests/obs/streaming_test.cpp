// Streaming-observability suite: delta-tick wire round-trips, the
// sum-to-total identity (a complete delta stream folds back to the
// process's final snapshot), multi-process merge ordering, the
// PeriodicSnapshotter's background thread against live recording (the
// TSan leg's target here), snapshot provenance stamps, and the
// deterministic trace sampler across forked workers.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/registry.hpp"
#include "obs/snapshotter.hpp"
#include "obs/trace.hpp"

namespace manytiers::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SeriesPath, DerivesFromMetricsPath) {
  EXPECT_EQ(series_path_for("part0.metrics.json"),
            "part0.metrics.series.json");
  EXPECT_EQ(series_path_for("/tmp/m.json"), "/tmp/m.series.json");
  EXPECT_EQ(series_path_for("noext"), "noext.series.json");
}

TEST(TimeSeries, SerializeParseRoundTrip) {
  std::vector<DeltaTick> ticks(2);
  ticks[0].pid = 4242;
  ticks[0].seq = 0;
  ticks[0].t_us = 1700000000000000ull;
  ticks[0].counters["serve.requests"] = 17;
  ticks[0].gauges["serve.inflight"] = -3;
  HistogramSnapshot h;
  h.count = 3;
  h.sum = 128.0;
  h.buckets = {{5, 2}, {6, 1}};
  ticks[0].histograms["driver.task_us"] = h;
  ticks[1].pid = 4242;
  ticks[1].seq = 1;
  ticks[1].t_us = 1700000000100000ull;
  // An empty tick is legal: the stream's heartbeat.

  const std::string text = time_series_to_json(ticks);
  const std::vector<DeltaTick> parsed = parse_time_series(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].pid, 4242);
  EXPECT_EQ(parsed[0].seq, 0u);
  EXPECT_EQ(parsed[0].t_us, 1700000000000000ull);
  EXPECT_EQ(parsed[0].counters.at("serve.requests"), 17u);
  EXPECT_EQ(parsed[0].gauges.at("serve.inflight"), -3);
  const HistogramSnapshot& ph = parsed[0].histograms.at("driver.task_us");
  EXPECT_EQ(ph.count, 3u);
  EXPECT_DOUBLE_EQ(ph.sum, 128.0);
  EXPECT_EQ(ph.buckets, h.buckets);
  EXPECT_TRUE(parsed[1].counters.empty());
  EXPECT_EQ(parsed[1].seq, 1u);
  // Byte-stable re-serialization, same contract as the snapshot format.
  EXPECT_EQ(time_series_to_json(parsed), text);
}

TEST(TimeSeries, RecordOutsideItsTickIsRejected) {
  // A per-metric record with no preceding tick record (or a stamp that
  // does not match the open tick) is corruption, not data.
  const std::string orphan =
      "[\n"
      "{\"kind\":\"cdelta\",\"name\":\"x\",\"delta\":1,"
      "\"pid\":1,\"seq\":0,\"t_us\":5}\n"
      "]\n";
  EXPECT_THROW(parse_time_series(orphan), std::invalid_argument);

  const std::string mismatched =
      "[\n"
      "{\"kind\":\"tick\",\"pid\":1,\"seq\":0,\"t_us\":5},\n"
      "{\"kind\":\"cdelta\",\"name\":\"x\",\"delta\":1,"
      "\"pid\":2,\"seq\":0,\"t_us\":5}\n"
      "]\n";
  EXPECT_THROW(parse_time_series(mismatched), std::invalid_argument);
}

TEST(TimeSeries, MergeOrdersStreamsOntoOneTimeline) {
  const auto tick = [](long pid, std::uint64_t seq, std::uint64_t t_us,
                       std::uint64_t requests, std::int64_t level) {
    DeltaTick t;
    t.pid = pid;
    t.seq = seq;
    t.t_us = t_us;
    t.counters["c"] = requests;
    t.gauges["g"] = level;
    return t;
  };
  const std::vector<DeltaTick> a = {tick(100, 0, 10, 1, 5),
                                    tick(100, 1, 30, 2, 7)};
  const std::vector<DeltaTick> b = {tick(50, 0, 20, 4, 1),
                                    tick(50, 1, 30, 8, 2)};

  const std::vector<DeltaTick> merged = merge_time_series({a, b});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].t_us, 10u);  // (10, pid 100)
  EXPECT_EQ(merged[1].t_us, 20u);  // (20, pid 50)
  EXPECT_EQ(merged[2].pid, 50);    // t_us ties break by pid
  EXPECT_EQ(merged[2].t_us, 30u);
  EXPECT_EQ(merged[3].pid, 100);
  EXPECT_EQ(merged[3].t_us, 30u);

  // Totals across the merged timeline: counters sum over everything,
  // gauges take each process's LAST level and sum across processes.
  const Snapshot total = time_series_total(merged);
  EXPECT_EQ(total.counters.at("c"), 15u);
  EXPECT_EQ(total.gauges.at("g"), 7 + 2);
  EXPECT_EQ(total.pid, 0);  // mixed streams: no single owner
  EXPECT_EQ(total.t_us, 30u);
}

TEST(TimeSeries, CompleteStreamSumsToFinalSnapshot) {
  Registry& registry = Registry::instance();
  registry.reset();
  ScopedEnable on;
  Counter& counter = registry.counter("streamtest.count");
  Gauge& gauge = registry.gauge("streamtest.level");
  Histogram& hist = registry.histogram("streamtest.us");

  counter.add(7);
  gauge.set(3);
  hist.record(8.0);  // integer-valued recordings: exact double sums

  const std::string path =
      "/tmp/mt_obs_stream_" + std::to_string(::getpid()) + ".series.json";
  PeriodicSnapshotter snapshotter({path, /*interval_ms=*/60000.0});
  snapshotter.start();  // baseline tick carries the state above

  counter.add(5);
  gauge.set(-2);
  hist.record(1024.0);
  snapshotter.stop();  // final tick carries the mutations

  const std::vector<DeltaTick> series = snapshotter.series();
  ASSERT_GE(series.size(), 2u);
  EXPECT_EQ(series.front().seq, 0u);

  const Snapshot total = time_series_total(series);
  const Snapshot final_snap = registry.snapshot();
  EXPECT_EQ(total.counters, final_snap.counters);
  EXPECT_EQ(total.gauges, final_snap.gauges);
  ASSERT_EQ(total.histograms.size(), final_snap.histograms.size());
  for (const auto& [name, h] : final_snap.histograms) {
    const auto it = total.histograms.find(name);
    ASSERT_NE(it, total.histograms.end()) << name;
    EXPECT_EQ(it->second.count, h.count) << name;
    EXPECT_DOUBLE_EQ(it->second.sum, h.sum) << name;
    EXPECT_EQ(it->second.buckets, h.buckets) << name;
  }
  EXPECT_EQ(total.pid, final_snap.pid);  // single stream keeps its owner

  // The sidecar on disk round-trips to the same stream.
  const std::vector<DeltaTick> reread = parse_time_series(slurp(path));
  EXPECT_EQ(time_series_to_json(reread), time_series_to_json(series));
  std::remove(path.c_str());
}

// The TSan target: background ticking while worker threads hammer the
// registry. Also pins the stream invariants — monotone seq, ordered
// t_us, the owning pid on every tick.
TEST(Snapshotter, BackgroundTicksUnderConcurrentRecording) {
  Registry& registry = Registry::instance();
  registry.reset();
  ScopedEnable on;
  Counter& counter = registry.counter("snapshotter.bg_count");
  Histogram& hist = registry.histogram("snapshotter.bg_us");

  const std::string path =
      "/tmp/mt_obs_bg_" + std::to_string(::getpid()) + ".series.json";
  PeriodicSnapshotter snapshotter({path, /*interval_ms=*/5.0});
  snapshotter.start();
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&counter, &hist] {
      for (int i = 0; i < 20000; ++i) {
        counter.add();
        hist.record(double(1 << (i % 10)));
      }
    });
  }
  for (auto& t : workers) t.join();
  snapshotter.stop();

  const std::vector<DeltaTick> series = snapshotter.series();
  ASSERT_GE(series.size(), 2u);  // baseline + final at minimum
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i].seq, i);
    EXPECT_EQ(series[i].pid, static_cast<long>(::getpid()));
    if (i > 0) EXPECT_GE(series[i].t_us, series[i - 1].t_us);
  }
  const Snapshot total = time_series_total(series);
  EXPECT_EQ(total.counters.at("snapshotter.bg_count"), 4u * 20000u);
  EXPECT_EQ(total.histograms.at("snapshotter.bg_us").count, 4u * 20000u);
  std::remove(path.c_str());
}

TEST(Snapshot, RegistryStampsSurviveRoundTrip) {
  ScopedEnable on;
  Registry::instance().counter("stamptest.count").add();
  const Snapshot snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.pid, static_cast<long>(::getpid()));
  EXPECT_GT(snap.t_us, 0u);

  const Snapshot reparsed = parse_snapshot(snapshot_to_json(snap));
  EXPECT_EQ(reparsed.pid, snap.pid);
  EXPECT_EQ(reparsed.t_us, snap.t_us);

  // Unstamped (hand-built) snapshots serialize with no meta record at
  // all, keeping pre-stamp sidecars byte-identical.
  Snapshot bare;
  bare.counters["x"] = 1;
  EXPECT_EQ(snapshot_to_json(bare).find("\"kind\":\"meta\""),
            std::string::npos);
}

// Two forked workers must keep the SAME 1-in-N task subset: the sampler
// hashes the caller-supplied key, never process-local state. This is
// what lets a sharded --trace-sample run stitch into the task set an
// unsharded run keeps.
TEST(TraceSampling, DeterministicAcrossForkedWorkers) {
  constexpr std::size_t kKeys = 64;
  constexpr std::uint64_t kEvery = 5;
  unsigned char masks[2][kKeys * 2];
  pid_t pids[2] = {-1, -1};
  for (int c = 0; c < 2; ++c) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    pids[c] = ::fork();
    ASSERT_GE(pids[c], 0);
    if (pids[c] == 0) {
      ::close(fds[0]);
      Tracer& tracer = Tracer::instance();
      if (!tracer.active()) {
        tracer.start("/tmp/mt_obs_fork_" + std::to_string(::getpid()) +
                     ".trace.json");
      }
      unsigned char mask[kKeys * 2];
      tracer.set_sample_every(kEvery);
      for (std::size_t k = 0; k < kKeys; ++k) {
        mask[k] = tracer.sample_keep(k) ? 1 : 0;
      }
      tracer.set_sample_every(1);  // 1 (like 0) keeps everything
      for (std::size_t k = 0; k < kKeys; ++k) {
        mask[kKeys + k] = tracer.sample_keep(k) ? 1 : 0;
      }
      ssize_t written = ::write(fds[1], mask, sizeof mask);
      ::_exit(written == static_cast<ssize_t>(sizeof mask) ? 0 : 1);
    }
    ::close(fds[1]);
    std::size_t got = 0;
    while (got < sizeof masks[c]) {
      const ssize_t n =
          ::read(fds[0], masks[c] + got, sizeof masks[c] - got);
      ASSERT_GT(n, 0);
      got += static_cast<std::size_t>(n);
    }
    ::close(fds[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pids[c], &status, 0), pids[c]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    std::remove(("/tmp/mt_obs_fork_" + std::to_string(pids[c]) +
                 ".trace.json")
                    .c_str());
  }

  std::size_t kept = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(masks[0][k], masks[1][k]) << "key " << k;
    kept += masks[0][k];
    EXPECT_EQ(masks[0][kKeys + k], 1) << "key " << k;
    EXPECT_EQ(masks[1][kKeys + k], 1) << "key " << k;
  }
  // 1-in-5 over 64 keys: the hash must thin the set without erasing it.
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, kKeys);
}

}  // namespace
}  // namespace manytiers::obs
