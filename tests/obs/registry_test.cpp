#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace manytiers::obs {
namespace {

TEST(Registry, DisabledByDefaultAndMutationsDrop) {
  ASSERT_FALSE(enabled());
  Counter& c = Registry::instance().counter("test.disabled");
  c.reset();
  c.add(42);
  EXPECT_EQ(c.value(), 0u);
  Gauge& g = Registry::instance().gauge("test.disabled_gauge");
  g.reset();
  g.set(7);
  EXPECT_EQ(g.value(), 0);
  Histogram& h = Registry::instance().histogram("test.disabled_hist");
  h.reset();
  h.record(3.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, ScopedEnableRestoresPreviousState) {
  ASSERT_FALSE(enabled());
  {
    const ScopedEnable on;
    EXPECT_TRUE(enabled());
    {
      const ScopedEnable off(false);
      EXPECT_FALSE(enabled());
    }
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());
}

TEST(Registry, HandleIsStableAndNamesAreDistinct) {
  Counter& a = Registry::instance().counter("test.handle_a");
  Counter& a2 = Registry::instance().counter("test.handle_a");
  Counter& b = Registry::instance().counter("test.handle_b");
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
}

TEST(Registry, ConcurrentCounterIncrementsAreExact) {
  // The sharded-counter contract: N threads x M relaxed adds lose
  // nothing. parallel_for gives each thread a contiguous chunk, so every
  // shard slot sees sustained traffic.
  const ScopedEnable on;
  Counter& c = Registry::instance().counter("test.concurrent");
  c.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  util::parallel_for(
      kThreads,
      [&](std::size_t) {
        for (std::size_t i = 0; i < kPerThread; ++i) c.add();
      },
      kThreads);
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Registry, ConcurrentHistogramRecordsAreExact) {
  const ScopedEnable on;
  Histogram& h = Registry::instance().histogram("test.concurrent_hist");
  h.reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  util::parallel_for(
      kThreads,
      [&](std::size_t t) {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          h.record(static_cast<double>(t + 1));
        }
      },
      kThreads);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // Sum of t+1 over threads, kPerThread times each.
  double expected = 0.0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    expected += static_cast<double>(t + 1) * kPerThread;
  }
  EXPECT_DOUBLE_EQ(h.sum(), expected);
}

TEST(Registry, GaugeSetAndAdd) {
  const ScopedEnable on;
  Gauge& g = Registry::instance().gauge("test.gauge");
  g.reset();
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 is [0, 2); bucket b >= 1 is [2^b, 2^(b+1)): every boundary
  // 2^b opens bucket b exactly.
  EXPECT_EQ(histogram_bucket(0.0), 0u);
  EXPECT_EQ(histogram_bucket(1.0), 0u);
  EXPECT_EQ(histogram_bucket(1.999), 0u);
  EXPECT_EQ(histogram_bucket(2.0), 1u);
  EXPECT_EQ(histogram_bucket(3.999), 1u);
  EXPECT_EQ(histogram_bucket(4.0), 2u);
  EXPECT_EQ(histogram_bucket(1024.0), 10u);
  EXPECT_EQ(histogram_bucket(1023.999), 9u);
  // Negatives, NaN, and infinities must not index out of range. Huge
  // values are capped at 2^62 before the integer cast (overflow guard),
  // so they land in bucket 62.
  EXPECT_EQ(histogram_bucket(-5.0), 0u);
  EXPECT_EQ(histogram_bucket(std::nan("")), 0u);
  EXPECT_EQ(histogram_bucket(1e300), 62u);
  EXPECT_LT(histogram_bucket(1e300), kHistogramBuckets);
  for (std::size_t b = 1; b < 30; ++b) {
    EXPECT_EQ(histogram_bucket(histogram_bucket_floor(b)), b) << b;
  }
  EXPECT_EQ(histogram_bucket_floor(0), 0.0);
  EXPECT_EQ(histogram_bucket_floor(10), 1024.0);
}

TEST(Histogram, RecordsLandInTheRightBuckets) {
  const ScopedEnable on;
  Histogram& h = Registry::instance().histogram("test.buckets");
  h.reset();
  h.record(1.0);    // bucket 0
  h.record(2.0);    // bucket 1
  h.record(3.0);    // bucket 1
  h.record(100.0);  // bucket 6 ([64, 128))
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), kHistogramBuckets);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[6], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
}

TEST(Snapshot, SerializeParseRoundTrip) {
  const ScopedEnable on;
  Registry& r = Registry::instance();
  r.reset();
  r.counter("rt.counter").add(42);
  r.gauge("rt.gauge").set(-7);
  Histogram& h = r.histogram("rt.hist");
  h.record(1.0);
  h.record(100.0);
  h.record(100.0);

  const Snapshot before = r.snapshot();
  const std::string text = snapshot_to_json(before);
  const Snapshot after = parse_snapshot(text);

  EXPECT_EQ(after.counters.at("rt.counter"), 42u);
  EXPECT_EQ(after.gauges.at("rt.gauge"), -7);
  const auto& hist = after.histograms.at("rt.hist");
  EXPECT_EQ(hist.count, 3u);
  EXPECT_DOUBLE_EQ(hist.sum, 201.0);
  ASSERT_EQ(hist.buckets.size(), 2u);  // sparse: buckets 0 and 6 only
  EXPECT_EQ(hist.buckets[0], (std::pair<std::size_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(hist.buckets[1], (std::pair<std::size_t, std::uint64_t>{6, 2}));
  // A round-trip of the round-trip is bit-stable.
  EXPECT_EQ(snapshot_to_json(after), text);
  r.reset();
}

TEST(Snapshot, MergeSumsAcrossParts) {
  Snapshot a, b;
  a.counters["c"] = 2;
  b.counters["c"] = 3;
  b.counters["only_b"] = 1;
  a.gauges["g"] = -1;
  b.gauges["g"] = 5;
  a.histograms["h"] = {2, 10.0, {{0, 1}, {3, 1}}};
  b.histograms["h"] = {3, 20.0, {{3, 2}, {5, 1}}};
  const Snapshot merged = merge_snapshots({a, b});
  EXPECT_EQ(merged.counters.at("c"), 5u);
  EXPECT_EQ(merged.counters.at("only_b"), 1u);
  EXPECT_EQ(merged.gauges.at("g"), 4);
  const auto& h = merged.histograms.at("h");
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 30.0);
  const std::vector<std::pair<std::size_t, std::uint64_t>> expected{
      {0, 1}, {3, 3}, {5, 1}};
  EXPECT_EQ(h.buckets, expected);
}

TEST(Snapshot, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_snapshot("not json"), std::invalid_argument);
  EXPECT_THROW(parse_snapshot("{\"kind\":\"counter\"}"),
               std::invalid_argument);  // no enclosing array
  EXPECT_THROW(
      parse_snapshot("[\n{\"kind\":\"counter\",\"name\":\"x\"}\n]\n"),
      std::invalid_argument);  // counter without value
}

}  // namespace
}  // namespace manytiers::obs
