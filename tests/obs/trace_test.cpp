#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/grid.hpp"
#include "driver/runner.hpp"
#include "obs/registry.hpp"

namespace manytiers::obs {
namespace {

TEST(TraceFile, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "trace_roundtrip.json";
  const std::vector<std::string> events{
      R"({"name":"a","ph":"B","ts":1,"pid":1,"tid":0})",
      R"({"name":"a","ph":"E","ts":2,"pid":1,"tid":0})",
      R"({"name":"mark","ph":"i","ts":3,"pid":1,"tid":0,"s":"t"})",
  };
  write_trace_file(path, events);
  EXPECT_EQ(read_trace_events(path), events);
  // An empty event list is still a valid (empty) array.
  write_trace_file(path, {});
  EXPECT_TRUE(read_trace_events(path).empty());
}

TEST(TraceFile, ReadRejectsNonArrayFiles) {
  const std::string path = ::testing::TempDir() + "trace_bad.json";
  std::ofstream(path) << "{\"not\":\"an array\"}\n";
  EXPECT_THROW(read_trace_events(path), std::invalid_argument);
  EXPECT_THROW(read_trace_events(::testing::TempDir() + "trace_missing.json"),
               std::invalid_argument);
}

// Pull "key":<value> out of a one-line JSON event. Good enough for the
// generated events under test (no nested objects in the probed keys).
std::string field(const std::string& event, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = event.find(needle);
  if (at == std::string::npos) return {};
  std::size_t start = at + needle.size();
  std::size_t end = start;
  if (event[start] == '"') {
    end = event.find('"', start + 1) + 1;
  } else {
    while (end < event.size() && event[end] != ',' && event[end] != '}') ++end;
  }
  return event.substr(start, end - start);
}

// One test, deliberately ordered inside a single body: Tracer::start is
// irreversible in-process, so the untraced baseline MUST be computed
// before the tracer comes up. This is the in-process half of the
// byte-identity invariant (the obs_smoke ctest covers the CLI half).
TEST(Tracer, TracingAndMetricsNeverChangeReportBytes) {
  auto grid = driver::smoke_grid();
  grid.base.n_flows = 30;  // keep the test quick; still multi-threaded

  // 1. Untraced, no metrics: the baseline bytes.
  const std::string baseline =
      driver::report_to_string(driver::run_grid(grid, {.threads = 2}),
                               /*include_timing=*/false);

  // 2. Same run with the registry hot: still identical.
  {
    const ScopedEnable metrics;
    EXPECT_EQ(driver::report_to_string(driver::run_grid(grid, {.threads = 2}),
                                       /*include_timing=*/false),
              baseline);
  }

  // 3. Now bring the tracer up and run traced + metered.
  ASSERT_FALSE(Tracer::instance().active());
  const std::string trace_path = ::testing::TempDir() + "run_grid.trace.json";
  Tracer::instance().start(trace_path);
  ASSERT_TRUE(Tracer::instance().active());
  Tracer::instance().set_process_name("trace_test");
  std::string traced;
  {
    const ScopedEnable metrics;
    traced = driver::report_to_string(driver::run_grid(grid, {.threads = 2}),
                                      /*include_timing=*/false);
  }
  EXPECT_EQ(traced, baseline);

  // 4. Flush and validate the trace itself: every line is an object,
  // B/E events nest as a proper stack per (pid, tid), and the phase +
  // parallel_for instrumentation actually fired.
  Tracer::instance().flush();
  const auto events = read_trace_events(trace_path);
  ASSERT_FALSE(events.empty());

  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      stacks;  // (pid, tid) -> open span names
  bool saw_chunk = false;
  bool saw_calibrate = false;
  bool saw_sweep = false;
  for (const auto& event : events) {
    ASSERT_TRUE(event.front() == '{' && event.back() == '}') << event;
    const std::string ph = field(event, "ph");
    const std::string name = field(event, "name");
    ASSERT_FALSE(ph.empty()) << event;
    ASSERT_FALSE(field(event, "pid").empty()) << event;
    const auto track = std::make_pair(field(event, "pid"), field(event, "tid"));
    if (ph == "\"B\"") {
      ASSERT_FALSE(field(event, "ts").empty()) << event;
      stacks[track].push_back(name);
      if (name == "\"parallel_for.chunk\"") saw_chunk = true;
      if (name == "\"run_grid.calibrate\"") saw_calibrate = true;
      if (name == "\"run_grid.sweep\"") saw_sweep = true;
    } else if (ph == "\"E\"") {
      ASSERT_FALSE(stacks[track].empty())
          << "E with no open B on track " << track.first << "/" << track.second;
      stacks[track].pop_back();
    } else {
      // Only the known non-pair phases may appear.
      ASSERT_TRUE(ph == "\"i\"" || ph == "\"X\"" || ph == "\"M\"") << event;
    }
  }
  for (const auto& [track, open] : stacks) {
    EXPECT_TRUE(open.empty()) << "unclosed span " << open.back() << " on track "
                              << track.first << "/" << track.second;
  }
  EXPECT_TRUE(saw_calibrate);
  EXPECT_TRUE(saw_sweep);
  EXPECT_TRUE(saw_chunk);
}

}  // namespace
}  // namespace manytiers::obs
