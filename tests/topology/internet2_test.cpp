#include "topology/internet2.hpp"

#include <gtest/gtest.h>

#include "geo/cities.hpp"
#include "topology/dijkstra.hpp"

namespace manytiers::topology {
namespace {

TEST(Internet2, HasElevenPopsAndFourteenLinks) {
  const auto net = internet2_network();
  EXPECT_EQ(net.pop_count(), 11u);
  EXPECT_EQ(net.link_count(), 14u);
}

TEST(Internet2, IsFullyConnected) {
  const auto net = internet2_network();
  const auto sp = shortest_paths(net, 0);
  for (PopId i = 0; i < net.pop_count(); ++i) {
    EXPECT_NE(sp.distance_miles[i], kUnreachable) << net.pop(i).name;
  }
}

TEST(Internet2, ClassicAbileneAdjacencies) {
  const auto net = internet2_network();
  const auto id = [&](const char* name) { return *net.find_pop(name); };
  EXPECT_TRUE(net.has_link(id("Seattle"), id("Sunnyvale")));
  EXPECT_TRUE(net.has_link(id("Seattle"), id("Denver")));
  EXPECT_TRUE(net.has_link(id("Chicago"), id("New York")));
  EXPECT_TRUE(net.has_link(id("Atlanta"), id("Washington")));
  // No transcontinental shortcut.
  EXPECT_FALSE(net.has_link(id("Seattle"), id("New York")));
  EXPECT_FALSE(net.has_link(id("Los Angeles"), id("Atlanta")));
}

TEST(Internet2, LinkLengthsAreGeographic) {
  const auto net = internet2_network();
  for (const auto& link : net.links()) {
    EXPECT_GT(link.length_miles, 100.0);
    EXPECT_LT(link.length_miles, 2500.0);
  }
}

TEST(Internet2, SeattleToNewYorkIsTranscontinental) {
  const auto net = internet2_network();
  const double d = shortest_distance(net, *net.find_pop("Seattle"),
                                     *net.find_pop("New York"));
  // Routed distance must be at least the great-circle ~2400 mi and less
  // than double it.
  EXPECT_GT(d, 2400.0);
  EXPECT_LT(d, 4800.0);
}

TEST(Internet2, WashingtonToNewYorkIsOneHop) {
  const auto net = internet2_network();
  const auto sp = shortest_paths(net, *net.find_pop("Washington"));
  const auto path = sp.path_to(*net.find_pop("New York"));
  EXPECT_EQ(path.size(), 2u);
}

TEST(Internet2, PopNamesResolveToCityDatabase) {
  const auto net = internet2_network();
  for (PopId i = 0; i < net.pop_count(); ++i) {
    EXPECT_TRUE(geo::find_city(net.pop(i).name).has_value())
        << net.pop(i).name;
  }
}

}  // namespace
}  // namespace manytiers::topology
