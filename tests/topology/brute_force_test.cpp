// Dijkstra cross-checked against exhaustive simple-path enumeration on
// small random graphs — the oracle is too slow for real backbones but
// unarguable on 8 vertices.
#include <gtest/gtest.h>

#include <vector>

#include "topology/dijkstra.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace manytiers::topology {
namespace {

// Minimum-length simple path src -> dst by DFS over every simple path.
double brute_force_distance(const Network& net, PopId src, PopId dst) {
  const std::size_t n = net.pop_count();
  std::vector<char> visited(n, 0);
  double best = kUnreachable;
  const auto dfs = [&](auto&& self, PopId at, double acc) -> void {
    if (at == dst) {
      if (acc < best) best = acc;
      return;
    }
    visited[at] = 1;
    for (const auto& edge : net.neighbors(at)) {
      if (!visited[edge.to]) self(self, edge.to, acc + edge.length_miles);
    }
    visited[at] = 0;
  };
  dfs(dfs, src, 0.0);
  return best;
}

Network random_network(std::uint64_t seed, std::size_t n_pops,
                       std::size_t n_links) {
  util::Rng rng(seed);
  Network net("random");
  for (std::size_t i = 0; i < n_pops; ++i) {
    net.add_pop("P" + std::to_string(i),
                {rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)});
  }
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < n_links && attempts < n_links * 30) {
    ++attempts;
    const PopId a = rng.index(n_pops);
    const PopId b = rng.index(n_pops);
    if (a == b || net.has_link(a, b)) continue;
    net.add_link(a, b, rng.uniform(1.0, 1000.0));
    ++added;
  }
  return net;
}

TEST(DijkstraBruteForce, AgreesOnSmallRandomGraphs) {
  // Sparse seeds leave some graphs disconnected on purpose: the oracle
  // must agree on kUnreachable too. Distances are compared exactly —
  // both sides accumulate edge lengths left to right along the optimal
  // path, so equal paths mean equal bits.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const std::size_t n = 4 + seed % 5;          // 4..8 vertices
    const std::size_t links = 2 + (seed * 7) % 10;  // 2..11 edges
    const Network net = random_network(seed, n, links);
    for (PopId s = 0; s < net.pop_count(); ++s) {
      const auto sp = shortest_paths(net, s);
      for (PopId d = 0; d < net.pop_count(); ++d) {
        const double oracle = brute_force_distance(net, s, d);
        if (oracle == kUnreachable) {
          EXPECT_EQ(sp.distance_miles[d], kUnreachable)
              << "seed " << seed << " " << s << "->" << d;
        } else {
          // Dijkstra's optimum can differ from the oracle's only in
          // summation order when distinct optimal paths tie; allow the
          // one-ulp-scale gap a tie implies, and nothing more.
          EXPECT_NEAR(sp.distance_miles[d], oracle, oracle * 1e-12)
              << "seed " << seed << " " << s << "->" << d;
        }
      }
    }
  }
}

TEST(DijkstraBruteForce, AllPairsMatrixMatchesTheOracleToo) {
  const Network net = random_network(99, 7, 9);
  const auto matrix = all_pairs_distances(net);
  for (PopId s = 0; s < net.pop_count(); ++s) {
    for (PopId d = 0; d < net.pop_count(); ++d) {
      const double oracle = brute_force_distance(net, s, d);
      if (oracle == kUnreachable) {
        EXPECT_EQ(matrix(s, d), kUnreachable);
      } else {
        EXPECT_NEAR(matrix(s, d), oracle, oracle * 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace manytiers::topology
