#include "topology/graph.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace manytiers::topology {
namespace {

Network two_pop_network() {
  Network net("test");
  net.add_pop("A", {40.71, -74.01});   // New York
  net.add_pop("B", {42.36, -71.06});   // Boston
  return net;
}

TEST(Network, AddPopAssignsSequentialIds) {
  Network net;
  EXPECT_EQ(net.add_pop("A", {0.0, 0.0}), 0u);
  EXPECT_EQ(net.add_pop("B", {1.0, 1.0}), 1u);
  EXPECT_EQ(net.pop_count(), 2u);
}

TEST(Network, RejectsDuplicatePopNames) {
  Network net;
  net.add_pop("A", {0.0, 0.0});
  EXPECT_THROW(net.add_pop("A", {1.0, 1.0}), std::invalid_argument);
}

TEST(Network, RejectsInvalidCoordinates) {
  Network net;
  EXPECT_THROW(net.add_pop("bad", {95.0, 0.0}), std::invalid_argument);
}

TEST(Network, FindPopByName) {
  const auto net = two_pop_network();
  EXPECT_EQ(net.find_pop("B"), 1u);
  EXPECT_FALSE(net.find_pop("C").has_value());
}

TEST(Network, LinkDefaultsToGreatCircleLength) {
  auto net = two_pop_network();
  net.add_link(0, 1);
  ASSERT_EQ(net.link_count(), 1u);
  // NYC - Boston is about 190 miles.
  EXPECT_NEAR(net.links()[0].length_miles, 190.0, 10.0);
}

TEST(Network, ExplicitLinkLengthIsRespected) {
  auto net = two_pop_network();
  net.add_link(0, 1, 500.0);
  EXPECT_DOUBLE_EQ(net.links()[0].length_miles, 500.0);
}

TEST(Network, LinksAreBidirectional) {
  auto net = two_pop_network();
  net.add_link(0, 1);
  ASSERT_EQ(net.neighbors(0).size(), 1u);
  ASSERT_EQ(net.neighbors(1).size(), 1u);
  EXPECT_EQ(net.neighbors(0)[0].to, 1u);
  EXPECT_EQ(net.neighbors(1)[0].to, 0u);
}

TEST(Network, RejectsSelfAndDuplicateLinks) {
  auto net = two_pop_network();
  net.add_link(0, 1);
  EXPECT_THROW(net.add_link(0, 0), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 1), std::invalid_argument);
  EXPECT_THROW(net.add_link(1, 0), std::invalid_argument);
}

TEST(Network, RejectsBadIdsAndValues) {
  auto net = two_pop_network();
  EXPECT_THROW(net.add_link(0, 5), std::out_of_range);
  EXPECT_THROW(net.add_link(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 1, 100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.pop(9), std::out_of_range);
  EXPECT_THROW(net.neighbors(9), std::out_of_range);
  EXPECT_THROW(net.has_link(9, 0), std::out_of_range);
}

TEST(Network, RejectsNonFiniteLinkLengthAndCapacity) {
  // A NaN or infinite length would silently poison every downstream
  // shortest-path distance; a rejected link must also leave no state
  // behind, so the same pair is still addable afterwards.
  auto net = two_pop_network();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(net.add_link(0, 1, nan), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 1, inf), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 1, 100.0, nan), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 1, 100.0, inf), std::invalid_argument);
  EXPECT_THROW(net.add_link(0, 1, 100.0, -3.0), std::invalid_argument);
  EXPECT_EQ(net.link_count(), 0u);
  EXPECT_TRUE(net.neighbors(0).empty());
  net.add_link(0, 1, 100.0);
  EXPECT_TRUE(net.has_link(0, 1));
}

TEST(Network, HasLink) {
  auto net = two_pop_network();
  EXPECT_FALSE(net.has_link(0, 1));
  net.add_link(0, 1);
  EXPECT_TRUE(net.has_link(0, 1));
  EXPECT_TRUE(net.has_link(1, 0));
}

}  // namespace
}  // namespace manytiers::topology
