#include "topology/dijkstra.hpp"

#include <gtest/gtest.h>

namespace manytiers::topology {
namespace {

// A diamond: A-B (1), A-C (5), B-C (1), C-D (1), B-D (5).
Network diamond() {
  Network net;
  net.add_pop("A", {0.0, 0.0});
  net.add_pop("B", {1.0, 0.0});
  net.add_pop("C", {2.0, 0.0});
  net.add_pop("D", {3.0, 0.0});
  net.add_link(0, 1, 1.0);
  net.add_link(0, 2, 5.0);
  net.add_link(1, 2, 1.0);
  net.add_link(2, 3, 1.0);
  net.add_link(1, 3, 5.0);
  return net;
}

TEST(Dijkstra, SourceDistanceIsZero) {
  const auto sp = shortest_paths(diamond(), 0);
  EXPECT_DOUBLE_EQ(sp.distance_miles[0], 0.0);
}

TEST(Dijkstra, PicksTheCheaperMultiHopPath) {
  const auto net = diamond();
  // A->C via B (1+1=2) beats the direct 5-mile link.
  EXPECT_DOUBLE_EQ(shortest_distance(net, 0, 2), 2.0);
  // A->D via B,C (1+1+1=3) beats A-B-D (6) and A-C-D (6).
  EXPECT_DOUBLE_EQ(shortest_distance(net, 0, 3), 3.0);
}

TEST(Dijkstra, PathReconstruction) {
  const auto sp = shortest_paths(diamond(), 0);
  const auto path = sp.path_to(3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
  EXPECT_EQ(path[3], 3u);
}

TEST(Dijkstra, PathToSourceIsSingleton) {
  const auto sp = shortest_paths(diamond(), 2);
  const auto path = sp.path_to(2);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 2u);
}

TEST(Dijkstra, DisconnectedNodeIsUnreachable) {
  Network net;
  net.add_pop("A", {0.0, 0.0});
  net.add_pop("B", {1.0, 0.0});
  net.add_pop("Island", {50.0, 50.0});
  net.add_link(0, 1, 1.0);
  const auto sp = shortest_paths(net, 0);
  EXPECT_EQ(sp.distance_miles[2], kUnreachable);
  EXPECT_TRUE(sp.path_to(2).empty());
}

TEST(Dijkstra, SymmetricDistances) {
  const auto net = diamond();
  for (PopId a = 0; a < net.pop_count(); ++a) {
    for (PopId b = 0; b < net.pop_count(); ++b) {
      EXPECT_DOUBLE_EQ(shortest_distance(net, a, b),
                       shortest_distance(net, b, a));
    }
  }
}

TEST(Dijkstra, AllPairsMatchesSingleSource) {
  const auto net = diamond();
  const auto ap = all_pairs_distances(net);
  ASSERT_EQ(ap.size(), net.pop_count());
  for (PopId s = 0; s < net.pop_count(); ++s) {
    const auto sp = shortest_paths(net, s);
    for (PopId d = 0; d < net.pop_count(); ++d) {
      EXPECT_EQ(ap(s, d), sp.distance_miles[d]);
    }
  }
}

TEST(Dijkstra, TriangleInequalityOverAllPairs) {
  const auto net = diamond();
  const auto d = all_pairs_distances(net);
  for (PopId a = 0; a < net.pop_count(); ++a) {
    for (PopId b = 0; b < net.pop_count(); ++b) {
      for (PopId c = 0; c < net.pop_count(); ++c) {
        EXPECT_LE(d(a, c), d(a, b) + d(b, c) + 1e-9);
      }
    }
  }
}

TEST(DistanceMatrix, GrowPreservesEntriesAndFillsUnreachable) {
  DistanceMatrix m(2);
  m(0, 0) = 0.0;
  m(0, 1) = 3.0;
  m(1, 0) = 3.0;
  m(1, 1) = 0.0;
  m.grow(4);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(0, 2), kUnreachable);
  EXPECT_EQ(m(2, 2), kUnreachable);
  EXPECT_EQ(m(3, 1), kUnreachable);
  EXPECT_THROW(m.grow(1), std::invalid_argument);
}

TEST(Dijkstra, ValidatesIds) {
  const auto net = diamond();
  EXPECT_THROW(shortest_paths(net, 99), std::out_of_range);
  EXPECT_THROW(shortest_distance(net, 0, 99), std::out_of_range);
  const auto sp = shortest_paths(net, 0);
  EXPECT_THROW(sp.path_to(99), std::out_of_range);
}

}  // namespace
}  // namespace manytiers::topology
