#include "topology/utilization.hpp"

#include <gtest/gtest.h>

#include "topology/internet2.hpp"

namespace manytiers::topology {
namespace {

// Line network A - B - C with 10 Gbps links.
Network line() {
  Network net;
  net.add_pop("A", {0.0, 0.0});
  net.add_pop("B", {1.0, 0.0});
  net.add_pop("C", {2.0, 0.0});
  net.add_link(0, 1, 100.0, 10.0);
  net.add_link(1, 2, 100.0, 10.0);
  return net;
}

TEST(LoadNetwork, SingleDemandLoadsEveryHop) {
  const auto net = line();
  const std::vector<TrafficDemand> demands{{0, 2, 500.0}};
  const auto report = load_network(net, demands);
  ASSERT_EQ(report.links.size(), 2u);
  EXPECT_DOUBLE_EQ(report.links[0].mbps, 500.0);
  EXPECT_DOUBLE_EQ(report.links[1].mbps, 500.0);
  EXPECT_DOUBLE_EQ(report.total_demand_mbps, 500.0);
  EXPECT_DOUBLE_EQ(report.total_carried_mbps, 1000.0);  // 2 hops
  EXPECT_DOUBLE_EQ(report.max_utilization, 0.05);       // 500 / 10000
}

TEST(LoadNetwork, DemandsAccumulatePerLink) {
  const auto net = line();
  const std::vector<TrafficDemand> demands{
      {0, 1, 300.0}, {0, 2, 200.0}, {2, 1, 100.0}};
  const auto report = load_network(net, demands);
  EXPECT_DOUBLE_EQ(report.links[0].mbps, 500.0);  // A-B: 300 + 200
  EXPECT_DOUBLE_EQ(report.links[1].mbps, 300.0);  // B-C: 200 + 100
  EXPECT_EQ(report.busiest_link, 0u);
}

TEST(LoadNetwork, CountsUnroutableDemands) {
  Network net;
  net.add_pop("A", {0.0, 0.0});
  net.add_pop("B", {1.0, 0.0});
  net.add_pop("Island", {10.0, 10.0});
  net.add_link(0, 1, 50.0, 1.0);
  const std::vector<TrafficDemand> demands{{0, 2, 100.0}, {0, 1, 10.0}};
  const auto report = load_network(net, demands);
  EXPECT_EQ(report.unroutable_demands, 1u);
  EXPECT_DOUBLE_EQ(report.links[0].mbps, 10.0);
}

TEST(LoadNetwork, Validates) {
  const auto net = line();
  EXPECT_THROW(
      load_network(net, std::vector<TrafficDemand>{{0, 9, 1.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      load_network(net, std::vector<TrafficDemand>{{0, 1, 0.0}}),
      std::invalid_argument);
  EXPECT_THROW(load_network(Network("empty"), std::vector<TrafficDemand>{}),
               std::invalid_argument);
}

TEST(LoadNetwork, EmptyDemandsYieldZeroLoads) {
  const auto report = load_network(line(), std::vector<TrafficDemand>{});
  for (const auto& l : report.links) {
    EXPECT_DOUBLE_EQ(l.mbps, 0.0);
  }
  EXPECT_DOUBLE_EQ(report.max_utilization, 0.0);
}

TEST(LoadNetwork, Internet2TranscontinentalFlowCrossesTheCore) {
  const auto net = internet2_network();
  const std::vector<TrafficDemand> demands{
      {*net.find_pop("Seattle"), *net.find_pop("New York"), 1000.0}};
  const auto report = load_network(net, demands);
  // The flow must traverse several links, each carrying exactly 1 Gbps.
  int loaded = 0;
  for (const auto& l : report.links) {
    if (l.mbps > 0.0) {
      EXPECT_DOUBLE_EQ(l.mbps, 1000.0);
      ++loaded;
    }
  }
  EXPECT_GE(loaded, 3);
  EXPECT_DOUBLE_EQ(report.total_carried_mbps, 1000.0 * loaded);
}

}  // namespace
}  // namespace manytiers::topology
